package analysis

import (
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestDefaultSuiteCleanTree is the invariant gate: the shipped tree has
// zero findings under the shipped suite. A red run here names exactly
// the file and rule that drifted.
func TestDefaultSuiteCleanTree(t *testing.T) {
	diags, err := Run(repoRoot(t), []string{"./..."}, DefaultSuite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDriverExitCodes builds the real cmd/echoimage-lint binary and
// checks its contract: exit 0 with no output on a clean tree, exit 1
// with file:line diagnostics on findings.
func TestDriverExitCodes(t *testing.T) {
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "echoimage-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/echoimage-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build driver: %v\n%s", err, out)
	}

	t.Run("clean tree exits 0", func(t *testing.T) {
		clean := exec.Command(bin, "./...")
		clean.Dir = root
		out, err := clean.CombinedOutput()
		if err != nil {
			t.Fatalf("want exit 0 on clean tree, got %v\n%s", err, out)
		}
		if len(out) != 0 {
			t.Errorf("want no output on clean tree, got:\n%s", out)
		}
	})

	t.Run("findings exit 1 with diagnostics", func(t *testing.T) {
		// layering/undeclared has no DAG entry, so the default suite
		// reports it.
		dirty := exec.Command(bin, fixtureBase+"/layering/undeclared")
		dirty.Dir = root
		out, err := dirty.CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
			t.Fatalf("want exit 1, got %v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "layering:") ||
			!strings.Contains(text, "undeclared.go:") {
			t.Errorf("diagnostic missing file/rule:\n%s", text)
		}
	})

	t.Run("list flag names every rule", func(t *testing.T) {
		list := exec.Command(bin, "-list")
		list.Dir = root
		out, err := list.CombinedOutput()
		if err != nil {
			t.Fatalf("-list: %v\n%s", err, out)
		}
		for _, a := range DefaultSuite() {
			if !strings.Contains(string(out), a.Name()) {
				t.Errorf("-list output missing rule %s:\n%s", a.Name(), out)
			}
		}
	})

	// The jsondriver fixture carries three rule hits: a live
	// goroutinelife finding, a poolcheck finding silenced by an audited
	// ignore, and the package's missing layering DAG entry.
	fixture := fixtureBase + "/jsondriver/jsonpkg"

	t.Run("json emits every finding with its suppression verdict", func(t *testing.T) {
		cmd := exec.Command(bin, "-json", fixture)
		cmd.Dir = root
		stdout, err := cmd.Output()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
			t.Fatalf("want exit 1 (live findings remain), got %v\n%s", err, stdout)
		}
		var findings []struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Rule       string `json:"rule"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		}
		if err := json.Unmarshal(stdout, &findings); err != nil {
			t.Fatalf("output is not a JSON finding array: %v\n%s", err, stdout)
		}
		suppressed := map[string]bool{}
		for _, f := range findings {
			if f.File == "" || f.Line <= 0 || f.Rule == "" || f.Message == "" {
				t.Errorf("finding with empty field: %+v", f)
			}
			suppressed[f.Rule] = f.Suppressed
		}
		if v, ok := suppressed["poolcheck"]; !ok || !v {
			t.Errorf("suppressed poolcheck finding missing from -json output: %s", stdout)
		}
		if v, ok := suppressed["goroutinelife"]; !ok || v {
			t.Errorf("live goroutinelife finding missing or wrongly suppressed: %s", stdout)
		}
	})

	t.Run("rules filter runs only the named analyzers", func(t *testing.T) {
		cmd := exec.Command(bin, "-rules", "goroutinelife", fixture)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
			t.Fatalf("want exit 1, got %v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "goroutinelife:") {
			t.Errorf("filtered run lost its own finding:\n%s", text)
		}
		if strings.Contains(text, "layering:") {
			t.Errorf("filtered run leaked an unfiltered rule:\n%s", text)
		}
	})

	t.Run("rules filter keeps foreign ignores valid", func(t *testing.T) {
		// Only poolcheck runs; its sole finding is suppressed, and the
		// suppression must not be reported as an unknown rule even
		// though no other analyzer in the filtered set exists.
		cmd := exec.Command(bin, "-rules", "poolcheck", fixture)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("want exit 0 (only finding is suppressed), got %v\n%s", err, out)
		}
		if len(out) != 0 {
			t.Errorf("want no output, got:\n%s", out)
		}
	})

	t.Run("rules filter rejects unknown rule names", func(t *testing.T) {
		cmd := exec.Command(bin, "-rules", "nosuchrule", fixture)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Fatalf("want exit 2 on unknown -rules name, got %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "nosuchrule") {
			t.Errorf("error does not name the bad rule:\n%s", out)
		}
	})

	t.Run("json on the clean tree exits 0 with only suppressed findings", func(t *testing.T) {
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = root
		stdout, err := cmd.Output()
		if err != nil {
			t.Fatalf("want exit 0 on clean tree, got %v\n%s", err, stdout)
		}
		var findings []struct {
			Suppressed bool `json:"suppressed"`
		}
		if err := json.Unmarshal(stdout, &findings); err != nil {
			t.Fatalf("output is not a JSON finding array: %v\n%s", err, stdout)
		}
		for _, f := range findings {
			if !f.Suppressed {
				t.Errorf("clean tree reported an unsuppressed finding:\n%s", stdout)
			}
		}
	})
}
