package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignoreMarker opens a suppression comment:
//
//	//echoimage:lint-ignore <rule> <reason>
//
// The comment silences diagnostics of <rule> on its own line, or — when
// its line is clean, the standalone-comment idiom — on the line directly
// below. One comment, one rule, one line: a second violation needs a
// second audited reason.
const ignoreMarker = "//echoimage:lint-ignore"

// ignoreRule is the rule name under which malformed or unknown ignore
// comments are reported. It is not itself suppressible.
const ignoreRule = "lint-ignore"

// ignoreComment is one parsed suppression comment.
type ignoreComment struct {
	pos  token.Position
	rule string
}

// evalIgnores resolves diagnostics of pkg against its lint-ignore
// comments: matched diagnostics come back marked Suppressed (not
// dropped), and every ignore comment that names an unknown rule or
// omits its reason becomes an additional unsuppressed finding.
func evalIgnores(pkg *Package, diags []Diagnostic, known map[string]bool) []Finding {
	var ignores []ignoreComment
	var bad []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreMarker) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignoreMarker)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: pos, Rule: ignoreRule,
						Message: "malformed ignore comment: want //echoimage:lint-ignore <rule> <reason>"})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					bad = append(bad, Diagnostic{Pos: pos, Rule: ignoreRule,
						Message: fmt.Sprintf("unknown rule %q in ignore comment", rule)})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: pos, Rule: ignoreRule,
						Message: fmt.Sprintf("ignore comment for %q needs a reason", rule)})
					continue
				}
				ignores = append(ignores, ignoreComment{pos: pos, rule: rule})
			}
		}
	}
	findings := suppress(diags, ignores)
	for _, b := range bad {
		findings = append(findings, Finding{Diagnostic: b})
	}
	return findings
}

// suppress marks, for each ignore, the diagnostics of its rule on the
// comment's own line — or, when that line has none, on the next line.
func suppress(diags []Diagnostic, ignores []ignoreComment) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	have := make(map[key]bool, len(diags))
	for _, d := range diags {
		have[key{d.Pos.Filename, d.Pos.Line, d.Rule}] = true
	}
	dead := make(map[key]bool, len(ignores))
	for _, ig := range ignores {
		k := key{ig.pos.Filename, ig.pos.Line, ig.rule}
		if !have[k] {
			k.line++ // standalone comment above the offending line
		}
		dead[k] = true
	}
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{
			Diagnostic: d,
			Suppressed: dead[key{d.Pos.Filename, d.Pos.Line, d.Rule}],
		})
	}
	return findings
}
