package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixtureBase is the import-path root of the lint fixtures. The
// testdata directory keeps them out of ./... wildcards (and so out of
// the real lint run and the module build), while explicit import paths
// still load and typecheck them.
const fixtureBase = "echoimage/internal/analysis/testdata/src"

// repoRoot locates the module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("resolve repo root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

// runFixture runs analyzers over the named fixture packages.
func runFixture(t *testing.T, analyzers []Analyzer, pkgs ...string) []Diagnostic {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = fixtureBase + "/" + p
	}
	diags, err := Run(repoRoot(t), patterns, analyzers)
	if err != nil {
		t.Fatalf("Run(%v): %v", patterns, err)
	}
	return diags
}

// readFixture returns a fixture file's contents (path relative to this
// package directory).
func readFixture(t *testing.T, relPath string) string {
	t.Helper()
	data, err := os.ReadFile(relPath)
	if err != nil {
		t.Fatalf("read fixture %s: %v", relPath, err)
	}
	return string(data)
}

// checkGolden compares rendered diagnostics against
// testdata/<name>.golden, rewriting it under -update.
func checkGolden(t *testing.T, name string, diags []Diagnostic) {
	t.Helper()
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", golden, err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}
