package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one fully typechecked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load enumerates the packages matched by patterns with
// `go list -export -deps -json` (run in dir), parses each non-dependency
// match from source, and typechecks it against the gc export data the go
// command produced for every dependency. This keeps the suite
// zero-dependency: the go toolchain does package resolution and export
// compilation; go/parser and go/types do the rest.
//
// Test files are not loaded: the invariants govern shipped code, and
// tests legitimately use context.Background, inline literals, and exact
// comparisons.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, gf := range t.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if perr != nil {
				return nil, fmt.Errorf("analysis: parse %s: %v", gf, perr)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, terr := conf.Check(t.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %v", t.ImportPath, terr)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
