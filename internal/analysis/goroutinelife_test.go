package analysis

import "testing"

func TestGoroutineLifeGolden(t *testing.T) {
	suite := []Analyzer{NewGoroutineLife()}
	diags := runFixture(t, suite, "goroutinelife/goroutinepkg", "goroutinelife/mainpkg")
	checkGolden(t, "goroutinelife", diags)
}
