// Package analysis is echoimage-lint: a zero-dependency static-analysis
// suite (stdlib go/parser, go/ast, go/token, go/types only) that enforces
// the serving stack's architectural invariants — the layered import DAG,
// context-first cancellation discipline, the closed stable-error-code
// set, compile-time metric names on the telemetry hot path, and the ban
// on exact floating-point comparison in the DSP core.
//
// Invariants live here as code, not prose: DESIGN.md documents them,
// suite.go declares them, and `make lint` (cmd/echoimage-lint) fails the
// build when the tree drifts. A finding that is intentional is silenced
// with an explicit, audited comment:
//
//	//echoimage:lint-ignore <rule> <reason>
//
// placed on the offending line or on the line directly above it. Each
// comment silences exactly one rule on exactly one line; unknown rule
// names in an ignore comment are themselves diagnostics, so suppressions
// cannot rot silently.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical diagnostic line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one architectural invariant. Check inspects a single
// typechecked package and reports violations; an analyzer whose
// invariant does not apply to the package returns nil.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and in
	// //echoimage:lint-ignore comments.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Check reports violations in pkg.
	Check(pkg *Package) []Diagnostic
}

// Run loads the packages matched by patterns (relative to dir), runs
// every analyzer over every loaded package, applies lint-ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. File names in the result are relative to dir when inside it.
func Run(dir string, patterns []string, analyzers []Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pd []Diagnostic
		for _, a := range analyzers {
			pd = append(pd, a.Check(pkg)...)
		}
		pd = applyIgnores(pkg, pd, known)
		diags = append(diags, pd...)
	}
	relativize(dir, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// relativize rewrites absolute diagnostic file names to dir-relative
// ones, for stable output independent of where the tree is checked out.
func relativize(dir string, diags []Diagnostic) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
