// Package analysis is echoimage-lint: a zero-dependency static-analysis
// suite (stdlib go/parser, go/ast, go/token, go/types only) that enforces
// the serving stack's architectural invariants — the layered import DAG,
// context-first cancellation discipline, the closed stable-error-code
// set, compile-time metric names on the telemetry hot path, and the ban
// on exact floating-point comparison in the DSP core.
//
// Invariants live here as code, not prose: DESIGN.md documents them,
// suite.go declares them, and `make lint` (cmd/echoimage-lint) fails the
// build when the tree drifts. A finding that is intentional is silenced
// with an explicit, audited comment:
//
//	//echoimage:lint-ignore <rule> <reason>
//
// placed on the offending line or on the line directly above it. Each
// comment silences exactly one rule on exactly one line; unknown rule
// names in an ignore comment are themselves diagnostics, so suppressions
// cannot rot silently.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical diagnostic line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one architectural invariant. Check inspects a single
// typechecked package and reports violations; an analyzer whose
// invariant does not apply to the package returns nil.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and in
	// //echoimage:lint-ignore comments.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Check reports violations in pkg.
	Check(pkg *Package) []Diagnostic
}

// Finding is one diagnostic plus its suppression outcome: a Suppressed
// finding matched an audited //echoimage:lint-ignore comment and does
// not fail the build, but machine consumers (-json) still see it — an
// audit trail of every accepted exception.
type Finding struct {
	Diagnostic
	Suppressed bool
}

// Run loads the packages matched by patterns (relative to dir), runs
// every analyzer over every loaded package, applies lint-ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. File names in the result are relative to dir when inside it.
func Run(dir string, patterns []string, analyzers []Analyzer) ([]Diagnostic, error) {
	findings, err := RunDetailed(dir, patterns, analyzers, nil)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, f := range findings {
		if !f.Suppressed {
			diags = append(diags, f.Diagnostic)
		}
	}
	return diags, nil
}

// RunDetailed is Run keeping suppressed findings, marked instead of
// dropped. knownRules extends the set of rule names valid in ignore
// comments beyond the analyzers actually run — a driver filtering the
// suite (-rules) passes the full suite's names here so an ignore for an
// unfiltered rule is not misreported as unknown.
func RunDetailed(dir string, patterns []string, analyzers []Analyzer, knownRules []string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers)+len(knownRules))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	for _, r := range knownRules {
		known[r] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var pd []Diagnostic
		for _, a := range analyzers {
			pd = append(pd, a.Check(pkg)...)
		}
		findings = append(findings, evalIgnores(pkg, pd, known)...)
	}
	relativize(dir, findings)
	sortFindings(findings)
	return findings, nil
}

// relativize rewrites absolute diagnostic file names to dir-relative
// ones, for stable output independent of where the tree is checked out.
func relativize(dir string, findings []Finding) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(abs, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
