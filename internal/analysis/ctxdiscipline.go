package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxConfig tunes the cancellation-discipline analyzer.
type CtxConfig struct {
	// Allowlist names the documented non-Context compat wrappers that
	// may root a fresh context.Background: "pkgpath.Func" for functions,
	// "pkgpath.Type.Method" for methods. Everything else outside package
	// main and _test.go files is a violation.
	Allowlist []string
}

// CtxDiscipline enforces the PR 4 cancellation contract: context.Context
// is always the first parameter, and new root contexts
// (context.Background / context.TODO) appear only in main, in tests, and
// in the explicitly allowlisted compat wrappers — everywhere else the
// caller's context must be threaded through, or a cancelled request
// keeps burning pipeline CPU.
type CtxDiscipline struct {
	allow map[string]bool
}

// NewCtxDiscipline builds the analyzer from an explicit allowlist.
func NewCtxDiscipline(cfg CtxConfig) *CtxDiscipline {
	allow := make(map[string]bool, len(cfg.Allowlist))
	for _, name := range cfg.Allowlist {
		allow[name] = true
	}
	return &CtxDiscipline{allow: allow}
}

// Name implements Analyzer.
func (c *CtxDiscipline) Name() string { return "ctxdiscipline" }

// Doc implements Analyzer.
func (c *CtxDiscipline) Doc() string {
	return "context.Context must be the first parameter; context.Background/TODO only in main, tests, and allowlisted compat wrappers"
}

// Check implements Analyzer.
func (c *CtxDiscipline) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		isTest := strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			diags = append(diags, c.checkParams(pkg, fn)...)
			if pkg.Types.Name() == "main" || isTest {
				continue
			}
			diags = append(diags, c.checkRoots(pkg, fn)...)
		}
	}
	return diags
}

// checkParams flags a context.Context parameter that is not first.
func (c *CtxDiscipline) checkParams(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	var diags []Diagnostic
	idx := 0
	firstIsCtx := false
	for fi, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		isCtx := isContextType(pkg.Info.Types[field.Type].Type)
		if fi == 0 && isCtx {
			firstIsCtx = true
		}
		if isCtx && idx > 0 && !firstIsCtx {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(field.Pos()),
				Rule: c.Name(),
				Message: fmt.Sprintf("context.Context must be the first parameter of %s (found at position %d)",
					funcDisplayName(fn), idx+1),
			})
		}
		idx += n
	}
	return diags
}

// checkRoots flags context.Background / context.TODO calls outside the
// allowlist.
func (c *CtxDiscipline) checkRoots(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	qualified := qualifiedFuncName(pkg, fn)
	if c.allow[qualified] {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		if !isPkgIdent(pkg, sel.X, "context") {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: c.Name(),
			Message: fmt.Sprintf("context.%s in %s: thread the caller's context instead (only main, tests, and allowlisted compat wrappers may root a new context)",
				sel.Sel.Name, funcDisplayName(fn)),
		})
		return true
	})
	return diags
}

// funcDisplayName renders "Func" or "(Recv).Method" for diagnostics.
func funcDisplayName(fn *ast.FuncDecl) string {
	if recv := receiverTypeName(fn); recv != "" {
		return "(" + recv + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// qualifiedFuncName renders the allowlist key: "pkgpath.Func" or
// "pkgpath.Type.Method".
func qualifiedFuncName(pkg *Package, fn *ast.FuncDecl) string {
	if recv := receiverTypeName(fn); recv != "" {
		return pkg.Path + "." + recv + "." + fn.Name.Name
	}
	return pkg.Path + "." + fn.Name.Name
}

// receiverTypeName extracts the bare receiver type name ("System" from
// *System), or "" for plain functions.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Type[T]) index the base identifier.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isContextType reports whether t is the named type context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isPkgIdent reports whether expr is an identifier naming an import of
// the given package path.
func isPkgIdent(pkg *Package, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

var _ Analyzer = (*CtxDiscipline)(nil)
