package analysis

import (
	"strings"
	"testing"
)

// suppressSuite pairs floateq (the suppressed rule) with ctxdiscipline
// (a second known rule, so a wrong-rule ignore is not "unknown").
func suppressSuite() []Analyzer {
	return []Analyzer{
		NewFloatEq(FloatEqConfig{Packages: []string{fixtureBase + "/suppress/ignorepkg"}}),
		NewCtxDiscipline(CtxConfig{}),
	}
}

func TestSuppressionGolden(t *testing.T) {
	diags := runFixture(t, suppressSuite(), "suppress/ignorepkg")
	checkGolden(t, "suppress", diags)
}

// TestSuppressionSemantics asserts the load-bearing properties directly,
// independent of golden formatting: an ignore silences exactly one rule
// on exactly one line, and bad ignore comments surface as findings.
func TestSuppressionSemantics(t *testing.T) {
	diags := runFixture(t, suppressSuite(), "suppress/ignorepkg")
	byLine := map[int][]Diagnostic{}
	for _, d := range diags {
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d)
	}
	src := fixtureLines(t, "testdata/src/suppress/ignorepkg/ignorepkg.go")

	// Same-line and line-above suppressions are silent.
	for _, fn := range []string{"func Trailing", "func Above"} {
		for line := src[fn]; line < src[fn]+4; line++ {
			if len(byLine[line]) != 0 {
				t.Errorf("%s: unexpected diagnostics near line %d: %v", fn, line, byLine[line])
			}
		}
	}
	// The unsuppressed violation survives.
	if !hasRuleNear(byLine, src["func Unsuppressed"], "floateq") {
		t.Error("Unsuppressed: floateq finding missing")
	}
	// An ignore for a different rule does not silence floateq.
	if !hasRuleNear(byLine, src["func WrongRule"], "floateq") {
		t.Error("WrongRule: floateq finding should survive a ctxdiscipline ignore")
	}
	// One ignore covers exactly one line: the second comparison survives.
	onePos := src["func OneLineOnly"]
	var oneLine []Diagnostic
	for line := onePos; line < onePos+6; line++ {
		oneLine = append(oneLine, byLine[line]...)
	}
	if len(oneLine) != 1 || oneLine[0].Rule != "floateq" {
		t.Errorf("OneLineOnly: want exactly 1 surviving floateq finding, got %v", oneLine)
	}
	// Unknown rule and missing reason are lint-ignore findings.
	if !hasRuleNear(byLine, src["func Unknown"], "lint-ignore") {
		t.Error("Unknown: missing lint-ignore finding for unknown rule")
	}
	if !hasRuleNear(byLine, src["func NoReason"], "lint-ignore") {
		t.Error("NoReason: missing lint-ignore finding for omitted reason")
	}
}

// hasRuleNear reports whether a diagnostic of rule sits within a few
// lines after the marker line.
func hasRuleNear(byLine map[int][]Diagnostic, start int, rule string) bool {
	for line := start; line < start+6; line++ {
		for _, d := range byLine[line] {
			if d.Rule == rule {
				return true
			}
		}
	}
	return false
}

// fixtureLines indexes the 1-based line of each marker substring, so
// the assertions survive fixture edits.
func fixtureLines(t *testing.T, relPath string) map[string]int {
	t.Helper()
	data := readFixture(t, relPath)
	idx := map[string]int{}
	for i, line := range strings.Split(data, "\n") {
		for _, marker := range []string{
			"func Trailing", "func Above", "func Unsuppressed",
			"func WrongRule", "func OneLineOnly", "func Unknown", "func NoReason",
		} {
			if strings.HasPrefix(line, marker) {
				idx[marker] = i + 1
			}
		}
	}
	return idx
}
