package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife enforces bounded goroutine lifetimes outside package
// main and tests: every `go` statement must spawn a body that provably
// reacts to shutdown — it selects or receives on a channel (a
// context.Done, a stop channel, or a work channel that closes) — or is
// registered with a sync.WaitGroup the owner waits on. A goroutine with
// neither has no termination story: it outlives Close, keeps its
// captures alive, and under churn accumulates into the slow leak that
// only shows up weeks into uptime.
//
// The spawned callee is resolved through same-package function and
// method declarations (`go r.runHandoff(...)` is checked against
// runHandoff's body). A spawn of a function the analyzer cannot see
// (another package's, or a function value) is a finding: wrap it in a
// local closure that carries the termination signal.
type GoroutineLife struct{}

// NewGoroutineLife builds the analyzer.
func NewGoroutineLife() *GoroutineLife { return &GoroutineLife{} }

// Name implements Analyzer.
func (g *GoroutineLife) Name() string { return "goroutinelife" }

// Doc implements Analyzer.
func (g *GoroutineLife) Doc() string {
	return "every goroutine outside main and tests must select on a stop signal or register with a sync.WaitGroup"
}

// Check implements Analyzer.
func (g *GoroutineLife) Check(pkg *Package) []Diagnostic {
	if pkg.Types.Name() == "main" {
		return nil
	}
	decls := funcDeclsByObject(pkg)
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			diags = append(diags, g.checkSpawn(pkg, decls, gs)...)
			return true
		})
	}
	return diags
}

// checkSpawn verifies one go statement's termination story.
func (g *GoroutineLife) checkSpawn(pkg *Package, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) []Diagnostic {
	pos := pkg.Fset.Position(gs.Pos())
	body, name := spawnBody(pkg, decls, gs.Call)
	if body == nil {
		return []Diagnostic{{Pos: pos, Rule: g.Name(),
			Message: fmt.Sprintf("goroutine body %s is not analyzable here: spawn a local closure that selects on a stop signal or registers with a sync.WaitGroup", name)}}
	}
	if terminable(pkg, body) {
		return nil
	}
	return []Diagnostic{{Pos: pos, Rule: g.Name(),
		Message: fmt.Sprintf("goroutine %s neither selects on a context/stop channel nor registers with a sync.WaitGroup; it cannot be shut down or awaited", name)}}
}

// spawnBody resolves the spawned call to an analyzable body: a func
// literal's own body, or the declaration of a same-package function or
// method.
func spawnBody(pkg *Package, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fd := decls[pkg.Info.Uses[fun]]; fd != nil {
			return fd.Body, fun.Name
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if fd := decls[pkg.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body, funcDisplayName(fd)
		}
		return nil, fun.Sel.Name
	}
	return nil, "expression"
}

// terminable reports whether body contains any recognized termination
// mechanism: a select statement, a channel receive, a range over a
// channel, or a sync.WaitGroup Done/Wait.
func terminable(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt:
			if len(e.Body.List) > 0 {
				found = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[e.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupCall(pkg, e, "Done") || isWaitGroupCall(pkg, e, "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call invokes the named method on a
// sync.WaitGroup.
func isWaitGroupCall(pkg *Package, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	return isNamedType(s.Recv(), "sync", "WaitGroup")
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// funcDeclsByObject indexes the package's function and method
// declarations by their types object, for callee resolution.
func funcDeclsByObject(pkg *Package) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

var _ Analyzer = (*GoroutineLife)(nil)
