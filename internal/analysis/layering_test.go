package analysis

import (
	"strings"
	"testing"
)

func TestLayeringGolden(t *testing.T) {
	suite := []Analyzer{NewLayering(LayeringConfig{
		Module: Module,
		Packages: map[string]LayerRule{
			fixtureBase + "/layering/mathpkg": {ForbiddenStd: []string{"net", "os"}},
			fixtureBase + "/layering/apppkg":  {},
			// layering/undeclared is deliberately absent.
		},
	})}
	diags := runFixture(t, suite,
		"layering/mathpkg", "layering/apppkg", "layering/undeclared")
	checkGolden(t, "layering", diags)
}

// TestLayeringDefaultDAGBlocksCoreTelemetry proves the shipped DAG
// rejects the canonical violation — internal/core importing the serving
// stack — by re-labelling a fixture that imports telemetry and proto as
// if it were core.
func TestLayeringDefaultDAGBlocksCoreTelemetry(t *testing.T) {
	layering := defaultLayering(t)
	pkgs, err := Load(repoRoot(t), []string{fixtureBase + "/layering/brokencore"})
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	pkg.Path = "echoimage/internal/core" // impersonate core for rule lookup
	diags := layering.Check(pkg)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (telemetry + proto):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "echoimage/internal/telemetry") &&
			!strings.Contains(d.Message, "echoimage/internal/proto") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestLayeringDefaultDAGCoversTree fails when a new package lands
// without a DAG entry — the undeclared-package diagnostic would fire in
// make lint, and this test names the omission earlier.
func TestLayeringDefaultDAGCoversTree(t *testing.T) {
	layering := defaultLayering(t)
	pkgs, err := Load(repoRoot(t), []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, pkg := range pkgs {
		if _, ok := layering.rule(pkg.Path); !ok {
			t.Errorf("package %s has no entry in the layering DAG (suite.go)", pkg.Path)
		}
	}
}

func defaultLayering(t *testing.T) *Layering {
	t.Helper()
	for _, a := range DefaultSuite() {
		if l, ok := a.(*Layering); ok {
			return l
		}
	}
	t.Fatal("DefaultSuite has no Layering analyzer")
	return nil
}
