package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CodeSwitchConfig tunes the error-code switch analyzer.
type CodeSwitchConfig struct {
	// ProtoPath is the import path of the package declaring the closed
	// code set (echoimage/internal/proto in the shipped tree).
	ProtoPath string
	// CodePrefix selects the constants forming the set: every exported
	// constant in ProtoPath whose name starts with CodePrefix.
	CodePrefix string
}

// CodeSwitch enforces that a switch classifying the stable protocol
// error codes handles the whole set: a switch statement with at least
// one case naming a proto Code constant must either cover every declared
// Code constant or carry a default clause. Without this, adding the next
// code (a future handoff_pending, say) silently falls through every
// retry/failover classification that was written against the old set.
type CodeSwitch struct {
	cfg CodeSwitchConfig
}

// NewCodeSwitch builds the analyzer.
func NewCodeSwitch(cfg CodeSwitchConfig) *CodeSwitch { return &CodeSwitch{cfg: cfg} }

// Name implements Analyzer.
func (c *CodeSwitch) Name() string { return "codeswitch" }

// Doc implements Analyzer.
func (c *CodeSwitch) Doc() string {
	return "a switch over proto error codes must cover every declared code or carry a default"
}

// Check implements Analyzer.
func (c *CodeSwitch) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			if d := c.checkSwitch(pkg, sw); d != nil {
				diags = append(diags, *d)
			}
			return true
		})
	}
	return diags
}

// checkSwitch classifies one switch statement and reports it when it
// names at least one code constant but neither covers the set nor
// defaults.
func (c *CodeSwitch) checkSwitch(pkg *Package, sw *ast.SwitchStmt) *Diagnostic {
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			if name := c.codeConstName(pkg, expr); name != "" {
				covered[name] = true
			}
		}
	}
	if len(covered) == 0 {
		return nil // not a switch over the code set
	}
	if hasDefault {
		return nil
	}
	var missing []string
	for _, name := range c.codeSet(pkg) {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return &Diagnostic{
		Pos:  pkg.Fset.Position(sw.Pos()),
		Rule: c.Name(),
		Message: fmt.Sprintf("switch over proto error codes is not exhaustive: missing %s (add the cases or a default)",
			strings.Join(missing, ", ")),
	}
}

// codeConstName resolves expr to an exported constant of the proto
// package with the configured prefix, returning its name or "".
func (c *CodeSwitch) codeConstName(pkg *Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != c.cfg.ProtoPath {
		return ""
	}
	if !obj.Exported() || !strings.HasPrefix(obj.Name(), c.cfg.CodePrefix) {
		return ""
	}
	return obj.Name()
}

// codeSet enumerates the closed code set: every exported constant with
// the prefix in the proto package's scope, as seen from pkg.
func (c *CodeSwitch) codeSet(pkg *Package) []string {
	scope := c.protoScope(pkg)
	if scope == nil {
		return nil
	}
	var names []string
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, c.cfg.CodePrefix) {
			continue
		}
		if obj, ok := scope.Lookup(name).(*types.Const); ok && obj.Exported() {
			names = append(names, name)
		}
	}
	return names
}

// protoScope locates the proto package's scope: the package's own scope
// when checking the proto package itself, or the imported package's.
func (c *CodeSwitch) protoScope(pkg *Package) *types.Scope {
	if pkg.Path == c.cfg.ProtoPath {
		return pkg.Types.Scope()
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == c.cfg.ProtoPath {
			return imp.Scope()
		}
	}
	return nil
}

var _ Analyzer = (*CodeSwitch)(nil)
