package analysis

import "testing"

func TestMetricNamesGolden(t *testing.T) {
	suite := []Analyzer{NewMetricNames(MetricNamesConfig{
		RegistryPath: fixtureBase + "/metricnames/faketel",
		RegistryType: "Registry",
		Methods:      map[string]int{"Counter": 0, "Gauge": 0, "Histogram": 0},
		Pattern:      MetricNamePattern,
	})}
	diags := runFixture(t, suite, "metricnames/metpkg")
	checkGolden(t, "metricnames", diags)
}
