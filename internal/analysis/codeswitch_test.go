package analysis

import "testing"

func TestCodeSwitchGolden(t *testing.T) {
	suite := []Analyzer{NewCodeSwitch(CodeSwitchConfig{
		ProtoPath:  fixtureBase + "/codeswitch/fakeproto",
		CodePrefix: "Code",
	})}
	diags := runFixture(t, suite, "codeswitch/fakeproto", "codeswitch/switchpkg")
	checkGolden(t, "codeswitch", diags)
}
