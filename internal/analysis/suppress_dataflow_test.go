package analysis

import (
	"strings"
	"testing"
)

// dataflowSuppressSuite runs the three dataflow rules the fixture
// exercises together, so cross-rule ignores resolve as "known rule,
// wrong line" rather than "unknown rule".
func dataflowSuppressSuite() []Analyzer {
	return []Analyzer{NewPoolCheck(), NewGoroutineLife(), NewLockGuard()}
}

func TestDataflowSuppressionGolden(t *testing.T) {
	diags := runFixture(t, dataflowSuppressSuite(), "suppress/dataflowpkg")
	checkGolden(t, "suppress_dataflow", diags)
}

// TestDataflowSuppressionSemantics pins the interaction rules for the
// dataflow analyzers independent of golden formatting: an ignore covers
// one rule on one line, a wrong-rule ignore silences nothing, and an
// unknown rule name is itself a finding.
func TestDataflowSuppressionSemantics(t *testing.T) {
	diags := runFixture(t, dataflowSuppressSuite(), "suppress/dataflowpkg")
	byLine := map[int][]Diagnostic{}
	for _, d := range diags {
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d)
	}
	src := markerLines(t, "testdata/src/suppress/dataflowpkg/dataflowpkg.go", []string{
		"func SuppressedLeak", "func WrongRuleIgnore", "func OnePerLine", "func UnknownRule",
	})

	// The audited poolcheck leak is silent.
	for line := src["func SuppressedLeak"]; line < src["func SuppressedLeak"]+5; line++ {
		if len(byLine[line]) != 0 {
			t.Errorf("SuppressedLeak: unexpected diagnostics near line %d: %v", line, byLine[line])
		}
	}
	// A goroutinelife ignore does not silence a lockguard finding.
	if !hasRuleNear(byLine, src["func WrongRuleIgnore"], "lockguard") {
		t.Error("WrongRuleIgnore: lockguard finding should survive a goroutinelife ignore")
	}
	// One ignore, one line: exactly one of the two spawns survives.
	var spawns []Diagnostic
	for line := src["func OnePerLine"]; line < src["func OnePerLine"]+5; line++ {
		spawns = append(spawns, byLine[line]...)
	}
	if len(spawns) != 1 || spawns[0].Rule != "goroutinelife" {
		t.Errorf("OnePerLine: want exactly 1 surviving goroutinelife finding, got %v", spawns)
	}
	// The misspelled rule is a lint-ignore finding and silences nothing.
	if !hasRuleNear(byLine, src["func UnknownRule"], "lint-ignore") {
		t.Error("UnknownRule: missing lint-ignore finding for misspelled rule")
	}
	if !hasRuleNear(byLine, src["func UnknownRule"], "poolcheck") {
		t.Error("UnknownRule: poolcheck leak should survive a misspelled ignore")
	}
}

// markerLines indexes the 1-based line of each marker substring.
func markerLines(t *testing.T, relPath string, markers []string) map[string]int {
	t.Helper()
	data := readFixture(t, relPath)
	idx := map[string]int{}
	for i, line := range strings.Split(data, "\n") {
		for _, marker := range markers {
			if strings.HasPrefix(line, marker) {
				idx[marker] = i + 1
			}
		}
	}
	return idx
}
