package analysis

import "testing"

func TestPoolCheckGolden(t *testing.T) {
	suite := []Analyzer{NewPoolCheck()}
	diags := runFixture(t, suite, "poolcheck/poolpkg")
	checkGolden(t, "poolcheck", diags)
}
