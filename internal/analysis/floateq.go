package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqConfig tunes the exact-float-comparison analyzer.
type FloatEqConfig struct {
	// Packages are the import paths held to the no-exact-comparison
	// rule: the numerical core, where == on floats is either a latent
	// bug or a deliberate fast path that deserves an audited
	// lint-ignore.
	Packages []string
}

// FloatEq flags == and != whose operands are floating-point or complex:
// in the DSP core these comparisons silently depend on bit-exact
// arithmetic that FFT reordering, fused multiply-add, or a different
// libm can break. Compare against a tolerance, or suppress with an
// explicit reason when exactness is the point (sentinel values, skip-if-
// identity fast paths).
type FloatEq struct {
	pkgs map[string]bool
}

// NewFloatEq builds the analyzer.
func NewFloatEq(cfg FloatEqConfig) *FloatEq {
	pkgs := make(map[string]bool, len(cfg.Packages))
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	return &FloatEq{pkgs: pkgs}
}

// Name implements Analyzer.
func (f *FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (f *FloatEq) Doc() string {
	return "no exact ==/!= on floating-point or complex operands in the numerical core; compare with a tolerance"
}

// Check implements Analyzer.
func (f *FloatEq) Check(pkg *Package) []Diagnostic {
	if !f.pkgs[pkg.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			t := floatOperand(pkg, bin.X)
			if t == nil {
				t = floatOperand(pkg, bin.Y)
			}
			if t == nil {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(bin.OpPos),
				Rule: f.Name(),
				Message: fmt.Sprintf("exact %s comparison on %s; compare with a tolerance (or suppress with an audited lint-ignore if exactness is intended)",
					bin.Op, t),
			})
			return true
		})
	}
	return diags
}

// floatOperand returns the operand's type when it is floating-point or
// complex (after default conversion of untyped constants), else nil.
func floatOperand(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	t := types.Default(tv.Type)
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	if basic.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return nil
	}
	return t
}

var _ Analyzer = (*FloatEq)(nil)
