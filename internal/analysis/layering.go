package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LayerRule declares what one package may import.
type LayerRule struct {
	// AllowedProject is the exact set of project import paths this
	// package may depend on. Empty means "no project imports".
	AllowedProject []string
	// AnyProject marks a wiring layer (cmd binaries, the facade's
	// examples): project imports are unconstrained.
	AnyProject bool
	// ForbiddenStd rejects standard-library imports whose path equals a
	// listed prefix or sits under it ("os" rejects "os" and "os/exec").
	// The pure math layer uses it to stay free of I/O.
	ForbiddenStd []string
}

// LayeringConfig is the declared import DAG: every project package must
// appear, either exactly or under a "/..." wildcard entry. A package the
// DAG does not know is itself a violation, so the map stays exhaustive
// as the tree grows.
type LayeringConfig struct {
	// Module is the module path; imports under it are project imports.
	Module string
	// Packages maps an import path — exact, or a prefix wildcard ending
	// in "/..." — to its rule. Exact entries win over wildcards.
	Packages map[string]LayerRule
}

// Layering enforces the declared import DAG of the module: the pure math
// layer imports no project code and no net/os, core never sees the
// serving layer, telemetry never sees core, and only the daemon wires
// proto, registry, telemetry and core together.
type Layering struct {
	Config LayeringConfig
}

// NewLayering builds the analyzer from a declared DAG.
func NewLayering(cfg LayeringConfig) *Layering { return &Layering{Config: cfg} }

// Name implements Analyzer.
func (l *Layering) Name() string { return "layering" }

// Doc implements Analyzer.
func (l *Layering) Doc() string {
	return "package imports must follow the declared layering DAG (math core is I/O-free; only daemon wires the serving stack)"
}

// rule resolves the declared rule for a package path: exact entry first,
// then the longest matching "/..." wildcard.
func (l *Layering) rule(path string) (LayerRule, bool) {
	if r, ok := l.Config.Packages[path]; ok {
		return r, true
	}
	bestLen := -1
	var best LayerRule
	for pat, r := range l.Config.Packages {
		if !strings.HasSuffix(pat, "/...") {
			continue
		}
		prefix := strings.TrimSuffix(pat, "/...")
		if (path == prefix || strings.HasPrefix(path, prefix+"/")) && len(prefix) > bestLen {
			bestLen, best = len(prefix), r
		}
	}
	return best, bestLen >= 0
}

func (l *Layering) isProject(path string) bool {
	return path == l.Config.Module || strings.HasPrefix(path, l.Config.Module+"/")
}

// Check implements Analyzer.
func (l *Layering) Check(pkg *Package) []Diagnostic {
	if !l.isProject(pkg.Path) {
		return nil
	}
	rule, declared := l.rule(pkg.Path)
	if !declared {
		var d []Diagnostic
		for _, f := range pkg.Files {
			d = append(d, Diagnostic{
				Pos:  pkg.Fset.Position(f.Name.Pos()),
				Rule: l.Name(),
				Message: fmt.Sprintf("package %q is not declared in the layering DAG; add it to the LayeringConfig with its allowed imports",
					pkg.Path),
			})
			break // one finding per package, anchored to the first file
		}
		return d
	}
	allowed := make(map[string]bool, len(rule.AllowedProject))
	for _, p := range rule.AllowedProject {
		allowed[p] = true
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			pos := pkg.Fset.Position(imp.Pos())
			if l.isProject(path) {
				if !rule.AnyProject && !allowed[path] {
					diags = append(diags, Diagnostic{Pos: pos, Rule: l.Name(),
						Message: fmt.Sprintf("package %q may not import %q (allowed project imports: %s)",
							pkg.Path, path, describeAllowed(rule.AllowedProject))})
				}
				continue
			}
			for _, banned := range rule.ForbiddenStd {
				if path == banned || strings.HasPrefix(path, banned+"/") {
					diags = append(diags, Diagnostic{Pos: pos, Rule: l.Name(),
						Message: fmt.Sprintf("package %q may not import %q (the %q tree is banned in this layer)",
							pkg.Path, path, banned)})
					break
				}
			}
		}
	}
	return diags
}

func describeAllowed(paths []string) string {
	if len(paths) == 0 {
		return "none"
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	return strings.Join(sorted, ", ")
}

var _ Analyzer = (*Layering)(nil)
