package analysis

import "testing"

func TestFloatEqGolden(t *testing.T) {
	suite := []Analyzer{NewFloatEq(FloatEqConfig{
		Packages: []string{fixtureBase + "/floateq/floatpkg"},
	})}
	diags := runFixture(t, suite, "floateq/floatpkg")
	checkGolden(t, "floateq", diags)
}
