package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricNamesConfig tunes the metric-name analyzer.
type MetricNamesConfig struct {
	// RegistryPath and RegistryType identify the telemetry registry
	// whose constructor methods are checked.
	RegistryPath string
	RegistryType string
	// Methods maps a registry method name to the index of its
	// series-name argument.
	Methods map[string]int
	// Pattern is the required shape of every series name.
	Pattern *regexp.Regexp
}

// MetricNamePattern is the project's series-name contract: one flat
// namespace, snake_case, echoimage-prefixed.
var MetricNamePattern = regexp.MustCompile(`^echoimage_[a-z0-9_]+$`)

// MetricNames keeps the telemetry hot path allocation-free and the
// series namespace closed: every name passed to Registry.Counter /
// Gauge / Histogram must be a compile-time string constant (never
// fmt.Sprintf-assembled per call) matching ^echoimage_[a-z0-9_]+$, so
// series are pre-registerable and dashboards never meet a dynamically
// invented name.
type MetricNames struct {
	cfg MetricNamesConfig
}

// NewMetricNames builds the analyzer.
func NewMetricNames(cfg MetricNamesConfig) *MetricNames { return &MetricNames{cfg: cfg} }

// Name implements Analyzer.
func (m *MetricNames) Name() string { return "metricnames" }

// Doc implements Analyzer.
func (m *MetricNames) Doc() string {
	return fmt.Sprintf("telemetry series names must be compile-time constants matching %s", m.cfg.Pattern)
}

// Check implements Analyzer.
func (m *MetricNames) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := m.cfg.Methods[sel.Sel.Name]
			if !ok || !m.isRegistryMethod(pkg, sel) {
				return true
			}
			if argIdx >= len(call.Args) {
				return true
			}
			diags = append(diags, m.checkName(pkg, call.Args[argIdx], sel.Sel.Name)...)
			return true
		})
	}
	return diags
}

// isRegistryMethod reports whether sel selects a method of the
// configured registry type.
func (m *MetricNames) isRegistryMethod(pkg *Package, sel *ast.SelectorExpr) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == m.cfg.RegistryType && obj.Pkg() != nil && obj.Pkg().Path() == m.cfg.RegistryPath
}

// checkName verifies one series-name argument.
func (m *MetricNames) checkName(pkg *Package, arg ast.Expr, method string) []Diagnostic {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil {
		return []Diagnostic{{
			Pos:  pkg.Fset.Position(arg.Pos()),
			Rule: m.Name(),
			Message: fmt.Sprintf("series name passed to %s.%s must be a compile-time string constant, not a runtime-built value (keeps the hot path allocation-free and the namespace closed)",
				m.cfg.RegistryType, method),
		}}
	}
	if tv.Value.Kind() != constant.String {
		return nil // the typechecker already rejects non-strings
	}
	name := constant.StringVal(tv.Value)
	if m.cfg.Pattern.MatchString(name) {
		return nil
	}
	return []Diagnostic{{
		Pos:  pkg.Fset.Position(arg.Pos()),
		Rule: m.Name(),
		Message: fmt.Sprintf("series name %q does not match %s",
			name, m.cfg.Pattern),
	}}
}

var _ Analyzer = (*MetricNames)(nil)
