package index

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary form: header (magic, version, config, dim, counts, entry,
// max level, level-generator counter), then IDs, levels, adjacency
// lists, and vector bits — all little-endian, in insertion order, so an
// index re-serializes byte-identically after a load (construction is
// deterministic and the serialized order is the stored order).
const (
	idxMagic   = "EIHX"
	idxVersion = 1
)

// MarshalBinary implements a deterministic stable serialization.
func (ix *Index) MarshalBinary() ([]byte, error) {
	n := len(ix.ids)
	out := make([]byte, 0, 64+12*n+4*len(ix.vecs))
	out = append(out, idxMagic...)
	out = binary.LittleEndian.AppendUint16(out, idxVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.cfg.M))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.cfg.EfConstruction))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.cfg.EfSearch))
	out = binary.LittleEndian.AppendUint64(out, uint64(ix.cfg.Seed))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.dim))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.entry))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.maxLevel))
	out = binary.LittleEndian.AppendUint64(out, ix.rngN)
	for _, id := range ix.ids {
		out = binary.LittleEndian.AppendUint64(out, uint64(id))
	}
	for _, l := range ix.levels {
		out = binary.LittleEndian.AppendUint32(out, uint32(l))
	}
	for _, lv := range ix.links {
		for _, ls := range lv {
			out = binary.LittleEndian.AppendUint32(out, uint32(len(ls)))
			for _, nb := range ls {
				out = binary.LittleEndian.AppendUint32(out, uint32(nb))
			}
		}
	}
	for _, v := range ix.vecs {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// reader is a bounds-checked cursor over the serialized form.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("index: truncated blob at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("index: truncated blob at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("index: truncated blob at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// Unmarshal decodes a serialized index, validating every structural
// invariant (neighbour references in range, level counts consistent,
// exact length) so a truncated or corrupted snapshot is rejected rather
// than loaded into a crashing graph.
func Unmarshal(b []byte) (*Index, error) {
	if len(b) < 4 || string(b[:4]) != idxMagic {
		return nil, fmt.Errorf("index: bad magic")
	}
	r := &reader{b: b, off: 4}
	ver, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ver != idxVersion {
		return nil, fmt.Errorf("index: version %d, want %d", ver, idxVersion)
	}
	var cfg Config
	m, err := r.u32()
	if err != nil {
		return nil, err
	}
	efc, err := r.u32()
	if err != nil {
		return nil, err
	}
	efs, err := r.u32()
	if err != nil {
		return nil, err
	}
	seed, err := r.u64()
	if err != nil {
		return nil, err
	}
	cfg.M, cfg.EfConstruction, cfg.EfSearch, cfg.Seed = int(m), int(efc), int(efs), int64(seed)
	if cfg.M <= 0 || cfg.EfConstruction <= 0 || cfg.EfSearch <= 0 {
		return nil, fmt.Errorf("index: invalid config (M %d, efc %d, efs %d)", cfg.M, cfg.EfConstruction, cfg.EfSearch)
	}
	dim, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	entry, err := r.u32()
	if err != nil {
		return nil, err
	}
	maxLevel, err := r.u32()
	if err != nil {
		return nil, err
	}
	rngN, err := r.u64()
	if err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<24 || count > 1<<30 {
		return nil, fmt.Errorf("index: invalid header (dim %d, count %d)", dim, count)
	}
	ix, err := New(int(dim), cfg)
	if err != nil {
		return nil, err
	}
	ix.rngN = rngN
	n := int(count)
	if n == 0 {
		if int32(entry) != -1 {
			return nil, fmt.Errorf("index: empty index with entry %d", int32(entry))
		}
		if r.off != len(b) {
			return nil, fmt.Errorf("index: %d trailing bytes", len(b)-r.off)
		}
		return ix, nil
	}
	if int(entry) >= n {
		return nil, fmt.Errorf("index: entry %d out of range (%d nodes)", entry, n)
	}
	ix.entry = int32(entry)
	ix.maxLevel = int32(maxLevel)
	ix.ids = make([]int64, n)
	for i := range ix.ids {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		ix.ids[i] = int64(v)
	}
	ix.levels = make([]int32, n)
	for i := range ix.levels {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int32(v) < 0 || int32(v) > ix.maxLevel {
			return nil, fmt.Errorf("index: node %d level %d above max %d", i, int32(v), ix.maxLevel)
		}
		ix.levels[i] = int32(v)
	}
	if ix.levels[entry] != ix.maxLevel {
		return nil, fmt.Errorf("index: entry node level %d != max level %d", ix.levels[entry], ix.maxLevel)
	}
	ix.links = make([][][]int32, n)
	for i := 0; i < n; i++ {
		lv := make([][]int32, ix.levels[i]+1)
		for l := range lv {
			cnt, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(cnt) > 2*cfg.M {
				return nil, fmt.Errorf("index: node %d level %d has %d links (max %d)", i, l, cnt, 2*cfg.M)
			}
			ls := make([]int32, cnt)
			for j := range ls {
				nb, err := r.u32()
				if err != nil {
					return nil, err
				}
				if int(nb) >= n {
					return nil, fmt.Errorf("index: node %d links to %d (only %d nodes)", i, nb, n)
				}
				if int(ix.levels[nb]) < l {
					return nil, fmt.Errorf("index: node %d level-%d link to node %d of level %d", i, l, nb, ix.levels[nb])
				}
				ls[j] = int32(nb)
			}
			lv[l] = ls
		}
		ix.links[i] = lv
	}
	ix.vecs = make([]float32, n*int(dim))
	for i := range ix.vecs {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		ix.vecs[i] = math.Float32frombits(v)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("index: %d trailing bytes", len(b)-r.off)
	}
	return ix, nil
}
