// Package index implements a pure-Go HNSW (hierarchical navigable small
// world) approximate-nearest-neighbour index over float32 vectors, ranked
// by cosine distance (vectors are expected L2-normalized, as produced by
// internal/embed). It exists so identification can shortlist candidate
// users in O(log n) instead of scanning every per-user model.
//
// Construction is deterministic: node levels are drawn from a seeded
// counter-based generator, so the same insertion sequence always builds
// the same graph — which is what makes the persisted snapshot's
// round-trip byte-identity property testable and keeps replicas
// bit-identical.
//
// Concurrency: Search is safe for any number of concurrent callers on an
// index that is not being mutated. Add requires exclusive access; the
// serving path therefore treats a published index as immutable and
// extends a Clone (copy-on-extend), matching the registry's snapshot
// discipline.
package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Config tunes the graph. Zero values take the defaults below.
type Config struct {
	// M is the maximum out-degree per node on the upper layers; layer 0
	// allows 2M. Larger M raises recall and memory.
	M int
	// EfConstruction is the candidate-beam width while inserting.
	EfConstruction int
	// EfSearch is the default candidate-beam width for Search; it is
	// raised to k when k is larger.
	EfSearch int
	// Seed drives the deterministic level generator.
	Seed int64
}

// DefaultConfig balances recall against build cost for embedding
// dimensions in the tens-to-thousands range.
func DefaultConfig() Config {
	return Config{M: 16, EfConstruction: 100, EfSearch: 48, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.M <= 0 {
		c.M = d.M
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = d.EfConstruction
	}
	if c.EfSearch <= 0 {
		c.EfSearch = d.EfSearch
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Result is one neighbour: the caller-assigned ID and the cosine distance
// (1 − dot) to the query.
type Result struct {
	ID   int
	Dist float32
}

// Index is the HNSW graph. Construct with New, fill with Add.
type Index struct {
	cfg      Config
	dim      int
	ids      []int64
	vecs     []float32 // row-major, node i at [i*dim:(i+1)*dim]
	levels   []int32
	links    [][][]int32 // [node][level][neighbour node]
	entry    int32       // entry node, -1 when empty
	maxLevel int32
	rngN     uint64  // level-generator counter (persisted for resumable Adds)
	mult     float64 // level multiplier 1/ln(M)

	scratch sync.Pool
}

// New builds an empty index over vectors of the given dimension.
func New(dim int, cfg Config) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("index: dimension %d must be positive", dim)
	}
	ix := &Index{cfg: cfg.withDefaults(), dim: dim, entry: -1}
	ix.mult = 1 / math.Log(float64(ix.cfg.M))
	return ix, nil
}

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.ids) }

// Config returns the effective configuration.
func (ix *Index) Config() Config { return ix.cfg }

// splitmix64 is the counter-based generator behind the level draws:
// stateless given (seed, counter), which is what keeps construction
// deterministic and resumable after deserialization.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nextLevel draws the geometric level of the next inserted node.
func (ix *Index) nextLevel() int32 {
	h := splitmix64(uint64(ix.cfg.Seed) ^ ix.rngN)
	ix.rngN++
	// Map to (0,1]; avoid 0 so the log is finite.
	u := (float64(h>>11) + 1) / (1 << 53)
	return int32(-math.Log(u) * ix.mult)
}

func (ix *Index) vec(n int32) []float32 {
	return ix.vecs[int(n)*ix.dim : (int(n)+1)*ix.dim]
}

func (ix *Index) dist(q []float32, n int32) float32 {
	v := ix.vec(n)
	_ = v[len(q)-1]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(q); i += 4 {
		s0 += q[i] * v[i]
		s1 += q[i+1] * v[i+1]
		s2 += q[i+2] * v[i+2]
		s3 += q[i+3] * v[i+3]
	}
	for ; i < len(q); i++ {
		s0 += q[i] * v[i]
	}
	return 1 - (s0 + s1 + s2 + s3)
}

// Add inserts one vector under the caller's ID. The vector is copied; its
// length must equal the index dimension. Add is not safe for concurrent
// use (see the package comment).
func (ix *Index) Add(id int, v []float32) error {
	if len(v) != ix.dim {
		return fmt.Errorf("index: vector of dim %d in a dim-%d index", len(v), ix.dim)
	}
	n := int32(len(ix.ids))
	ix.ids = append(ix.ids, int64(id))
	ix.vecs = append(ix.vecs, v...)
	level := ix.nextLevel()
	ix.levels = append(ix.levels, level)
	ix.links = append(ix.links, make([][]int32, level+1))

	if ix.entry < 0 {
		ix.entry = n
		ix.maxLevel = level
		return nil
	}

	q := ix.vec(n)
	sc := ix.getScratch()
	defer ix.scratch.Put(sc)

	ep := ix.entry
	epDist := ix.dist(q, ep)
	// Greedy descent through the layers above the new node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep, epDist = ix.greedyStep(q, ep, epDist, l)
	}
	// Beam search and connect on each layer from min(level, maxLevel) down.
	top := level
	if top > ix.maxLevel {
		top = ix.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := ix.searchLayer(q, ep, epDist, ix.cfg.EfConstruction, l, sc)
		maxDeg := ix.cfg.M
		if l == 0 {
			maxDeg = 2 * ix.cfg.M
		}
		neighbours := ix.selectNeighbours(cands, ix.cfg.M)
		ix.links[n][l] = neighbours
		for _, nb := range neighbours {
			ix.connect(nb, n, l, maxDeg)
		}
		if len(cands) > 0 {
			ep, epDist = cands[0].node, cands[0].dist
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = n
	}
	return nil
}

// selectNeighbours picks up to m links from candidates sorted ascending by
// distance to the base point, using the HNSW diversity heuristic: a
// candidate is kept only when it is closer to the base than to every
// already-kept neighbour, so the links spread across directions instead of
// bunching inside one cluster — what keeps the graph navigable when the
// data is clustered (every enrollee's embeddings are). Remaining slots are
// back-filled with the nearest pruned candidates so the degree, and with it
// the connectivity guarantee, is preserved.
func (ix *Index) selectNeighbours(cands []heapItem, m int) []int32 {
	if m > len(cands) {
		m = len(cands)
	}
	kept := make([]int32, 0, m)
	var pruned []heapItem
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		diverse := true
		for _, r := range kept {
			if ix.dist(ix.vec(c.node), r) < c.dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c.node)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(kept) >= m {
			break
		}
		kept = append(kept, c.node)
	}
	return kept
}

// connect adds `to` into from's layer-l neighbour list, re-selecting the
// maxDeg best links via the diversity heuristic when it overflows.
func (ix *Index) connect(from, to int32, l int32, maxDeg int) {
	ls := append(ix.links[from][l], to)
	if len(ls) > maxDeg {
		base := ix.vec(from)
		cands := make([]heapItem, len(ls))
		for i, nb := range ls {
			cands[i] = heapItem{ix.dist(base, nb), nb}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].node < cands[j].node
		})
		ls = ix.selectNeighbours(cands, maxDeg)
	}
	ix.links[from][l] = ls
}

// greedyStep walks to the closest neighbour at layer l until no neighbour
// improves on the current node (ef=1 descent).
func (ix *Index) greedyStep(q []float32, ep int32, epDist float32, l int32) (int32, float32) {
	for {
		improved := false
		for _, nb := range ix.links[ep][l] {
			if d := ix.dist(q, nb); d < epDist {
				ep, epDist = nb, d
				improved = true
			}
		}
		if !improved {
			return ep, epDist
		}
	}
}

// heapItem pairs a node with its distance to the current query.
type heapItem struct {
	dist float32
	node int32
}

// scratchSpace holds the per-search working state, pooled so concurrent
// searches allocate only on first use or after growth.
type scratchSpace struct {
	visited []uint32
	epoch   uint32
	cand    []heapItem // min-heap by dist
	res     []heapItem // max-heap by dist
	sorted  []heapItem // searchLayer's returned beam, ascending
}

func (ix *Index) getScratch() *scratchSpace {
	sc, _ := ix.scratch.Get().(*scratchSpace)
	if sc == nil {
		sc = &scratchSpace{}
	}
	if len(sc.visited) < len(ix.ids) {
		sc.visited = make([]uint32, len(ix.ids)+len(ix.ids)/2+8)
		sc.epoch = 0
	}
	if sc.epoch == math.MaxUint32 {
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
	return sc
}

// min-heap ops over cand.
func pushMin(h []heapItem, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popMin(h []heapItem) (heapItem, []heapItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(h) {
			break
		}
		if c+1 < len(h) && h[c+1].dist < h[c].dist {
			c++
		}
		if h[i].dist <= h[c].dist {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top, h
}

// max-heap ops over res.
func pushMax(h []heapItem, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist >= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popMax(h []heapItem) (heapItem, []heapItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(h) {
			break
		}
		if c+1 < len(h) && h[c+1].dist > h[c].dist {
			c++
		}
		if h[i].dist >= h[c].dist {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top, h
}

// searchLayer runs the beam search at one layer and returns the up-to-ef
// closest nodes, sorted ascending by distance. The returned slice aliases
// sc and is valid only until the next searchLayer call on the same
// scratch.
func (ix *Index) searchLayer(q []float32, ep int32, epDist float32, ef int, l int32, sc *scratchSpace) []heapItem {
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
	sc.visited[ep] = sc.epoch
	sc.cand = pushMin(sc.cand, heapItem{epDist, ep})
	sc.res = pushMax(sc.res, heapItem{epDist, ep})
	for len(sc.cand) > 0 {
		var cur heapItem
		cur, sc.cand = popMin(sc.cand)
		if len(sc.res) >= ef && cur.dist > sc.res[0].dist {
			break
		}
		for _, nb := range ix.links[cur.node][l] {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			sc.visited[nb] = sc.epoch
			d := ix.dist(q, nb)
			if len(sc.res) < ef || d < sc.res[0].dist {
				sc.cand = pushMin(sc.cand, heapItem{d, nb})
				sc.res = pushMax(sc.res, heapItem{d, nb})
				if len(sc.res) > ef {
					_, sc.res = popMax(sc.res)
				}
			}
		}
	}
	sc.sorted = append(sc.sorted[:0], sc.res...)
	sortItems(sc.sorted)
	return sc.sorted
}

// sortItems orders a beam ascending by (dist, node) with insertion sort:
// beams are small (≤ efConstruction), and this keeps sort.Slice's
// reflection out of the per-query hot path.
func sortItems(items []heapItem) {
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && (items[j].dist > it.dist || (items[j].dist == it.dist && items[j].node > it.node)) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
}

// Search returns the approximate k nearest neighbours of q, ascending by
// cosine distance. The beam width is max(Config.EfSearch, k).
func (ix *Index) Search(q []float32, k int) []Result {
	return ix.SearchEf(q, k, 0)
}

// SearchEf is Search with an explicit beam width ef (0 means the
// configured default); larger ef trades latency for recall.
func (ix *Index) SearchEf(q []float32, k int, ef int) []Result {
	if k <= 0 || len(ix.ids) == 0 || len(q) != ix.dim {
		return nil
	}
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	if ef < k {
		ef = k
	}
	sc := ix.getScratch()
	defer ix.scratch.Put(sc)
	ep := ix.entry
	epDist := ix.dist(q, ep)
	for l := ix.maxLevel; l > 0; l-- {
		ep, epDist = ix.greedyStep(q, ep, epDist, l)
	}
	near := ix.searchLayer(q, ep, epDist, ef, 0, sc)
	if len(near) > k {
		near = near[:k]
	}
	out := make([]Result, len(near))
	for i, it := range near {
		out[i] = Result{ID: int(ix.ids[it.node]), Dist: it.dist}
	}
	return out
}

// ScanNearest is the exact O(n) reference: a brute-force scan over every
// indexed vector. It exists for recall measurement and as the exhaustive
// baseline the scale benchmark compares against.
func (ix *Index) ScanNearest(q []float32, k int) []Result {
	if k <= 0 || len(ix.ids) == 0 || len(q) != ix.dim {
		return nil
	}
	var res []heapItem // max-heap of the best k
	for n := int32(0); n < int32(len(ix.ids)); n++ {
		d := ix.dist(q, n)
		if len(res) < k {
			res = pushMax(res, heapItem{d, n})
		} else if d < res[0].dist {
			_, res = popMax(res)
			res = pushMax(res, heapItem{d, n})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].dist != res[j].dist {
			return res[i].dist < res[j].dist
		}
		return res[i].node < res[j].node
	})
	out := make([]Result, len(res))
	for i, it := range res {
		out[i] = Result{ID: int(ix.ids[it.node]), Dist: it.dist}
	}
	return out
}

// Clone returns a deep copy that can be extended with Add without
// mutating the receiver — the copy-on-extend primitive behind the
// registry's incremental retrain.
func (ix *Index) Clone() *Index {
	c := &Index{
		cfg:      ix.cfg,
		dim:      ix.dim,
		entry:    ix.entry,
		maxLevel: ix.maxLevel,
		rngN:     ix.rngN,
		mult:     ix.mult,
	}
	c.ids = append([]int64(nil), ix.ids...)
	c.vecs = append([]float32(nil), ix.vecs...)
	c.levels = append([]int32(nil), ix.levels...)
	c.links = make([][][]int32, len(ix.links))
	for i, lv := range ix.links {
		nl := make([][]int32, len(lv))
		for l, ls := range lv {
			nl[l] = append([]int32(nil), ls...)
		}
		c.links[i] = nl
	}
	return c
}
