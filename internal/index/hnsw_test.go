package index

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomUnit returns a random L2-normalized vector.
func randomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var sum float64
	for i := range v {
		f := rng.NormFloat64()
		v[i] = float32(f)
		sum += f * f
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range v {
		v[i] *= inv
	}
	return v
}

func buildRandom(t testing.TB, n, dim int, seed int64) (*Index, [][]float32) {
	t.Helper()
	ix, err := New(dim, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		vecs[i] = randomUnit(rng, dim)
		if err := ix.Add(i+1, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return ix, vecs
}

func TestSearchRecallAgainstScan(t *testing.T) {
	const n, dim, k, queries = 2000, 32, 10, 100
	ix, _ := buildRandom(t, n, dim, 7)
	rng := rand.New(rand.NewSource(99))
	hits, total := 0, 0
	for q := 0; q < queries; q++ {
		query := randomUnit(rng, dim)
		approx := ix.Search(query, k)
		exact := ix.ScanNearest(query, k)
		if len(approx) != k || len(exact) != k {
			t.Fatalf("got %d approx, %d exact results", len(approx), len(exact))
		}
		inExact := make(map[int]bool, k)
		for _, r := range exact {
			inExact[r.ID] = true
		}
		for _, r := range approx {
			if inExact[r.ID] {
				hits++
			}
			total++
		}
	}
	recall := float64(hits) / float64(total)
	t.Logf("recall@%d over %d queries: %.3f", k, queries, recall)
	if recall < 0.95 {
		t.Errorf("recall %.3f below 0.95", recall)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, _ := buildRandom(t, 500, 16, 3)
	b, _ := buildRandom(t, 500, 16, 3)
	ba, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same insertion sequence built different graphs")
	}
}

func TestIncrementalAddMatchesBatch(t *testing.T) {
	// Adding in two phases must keep the graph searchable and the new
	// vectors findable.
	const dim = 16
	ix, err := New(dim, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var vecs [][]float32
	for i := 0; i < 300; i++ {
		v := randomUnit(rng, dim)
		vecs = append(vecs, v)
		if err := ix.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	ext := ix.Clone()
	for i := 300; i < 600; i++ {
		v := randomUnit(rng, dim)
		vecs = append(vecs, v)
		if err := ext.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 300 || ext.Len() != 600 {
		t.Fatalf("lens %d, %d", ix.Len(), ext.Len())
	}
	// Every vector, old or new, must find itself at distance ~0.
	for i, v := range vecs {
		res := ext.Search(v, 1)
		if len(res) != 1 || res[0].ID != i {
			t.Fatalf("vector %d: self-search returned %+v", i, res)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	ix, vecs := buildRandom(t, 200, 8, 5)
	before, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c := ix.Clone()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		if err := c.Add(1000+i, randomUnit(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	after, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("extending a clone mutated the original")
	}
	if res := ix.Search(vecs[0], 1); len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("original search broken after clone extend: %+v", res)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ix, vecs := buildRandom(t, 400, 12, 21)
	b1, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Unmarshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ix2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-serialization not byte-identical")
	}
	// Identical top-k for a fixed query set.
	rng := rand.New(rand.NewSource(33))
	for q := 0; q < 20; q++ {
		query := randomUnit(rng, 12)
		r1 := ix.Search(query, 5)
		r2 := ix2.Search(query, 5)
		if len(r1) != len(r2) {
			t.Fatalf("query %d: %d vs %d results", q, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", q, i, r1[i], r2[i])
			}
		}
	}
	// A loaded index must keep extending deterministically: the level
	// counter survives the round trip.
	ix3 := ix.Clone()
	extra := randomUnit(rng, 12)
	if err := ix2.Add(9999, extra); err != nil {
		t.Fatal(err)
	}
	if err := ix3.Add(9999, extra); err != nil {
		t.Fatal(err)
	}
	b3a, _ := ix2.MarshalBinary()
	b3b, _ := ix3.MarshalBinary()
	if !bytes.Equal(b3a, b3b) {
		t.Fatal("post-load Add diverged from in-memory Add")
	}
	_ = vecs
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	ix, _ := buildRandom(t, 50, 8, 2)
	b, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil accepted")
	}
	for _, cut := range []int{3, 10, len(b) / 2, len(b) - 1} {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Unmarshal(append(append([]byte{}, b...), 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte{}, b...)
	bad[1] = 'Z'
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix, vecs := buildRandom(t, 1000, 16, 9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := vecs[(g*200+i)%len(vecs)]
				res := ix.Search(v, 3)
				if len(res) == 0 {
					t.Errorf("goroutine %d: empty result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEmptyAndDegenerate(t *testing.T) {
	ix, err := New(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Search([]float32{1, 0, 0, 0}, 3); res != nil {
		t.Fatalf("empty index returned %+v", res)
	}
	if err := ix.Add(1, []float32{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(2, []float32{1, 0}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	res := ix.Search([]float32{1, 0, 0, 0}, 5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("singleton search: %+v", res)
	}
	if res := ix.Search([]float32{1, 0}, 1); res != nil {
		t.Fatal("query dim mismatch returned results")
	}
}
