package daemon

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"echoimage/internal/proto"
)

// TestHandoffExportImport walks the daemon half of the drain pipeline:
// enroll on a source daemon, flush-export the user's state (durable in
// the source's state directory), import on a destination daemon, and
// verify the destination trains a model covering the user.
func TestHandoffExportImport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := testServer(t, Options{StateDir: srcDir})
	dst := testServer(t, Options{StateDir: dstDir})
	ctx := context.Background()

	const user = 2
	for p := 0; p < 2; p++ {
		if _, err := src.Enroll(ctx, &proto.EnrollRequest{
			UserID:  user,
			Capture: wireCapture(t, user, p+1, 3, int64(p)),
			Retrain: p == 1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	exp, err := src.handoff(&proto.HandoffRequest{UserID: user, Export: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.State) == 0 || exp.Images != 6 {
		t.Fatalf("export returned %d bytes, %d images (want 6)", len(exp.State), exp.Images)
	}
	if _, err := os.Stat(filepath.Join(srcDir, "user-2.json")); err != nil {
		t.Errorf("export did not flush the user's state durably: %v", err)
	}

	imp, err := dst.handoff(&proto.HandoffRequest{UserID: user, State: exp.State})
	if err != nil {
		t.Fatal(err)
	}
	if !imp.Imported || imp.UserID != user || imp.Images != 6 {
		t.Fatalf("import response %+v", imp)
	}
	if !imp.RetrainQueued {
		t.Error("import did not queue a retrain")
	}

	// Idempotent re-delivery: no error, nothing re-imported.
	if again, err := dst.handoff(&proto.HandoffRequest{UserID: user, State: exp.State}); err != nil || again.Imported {
		t.Errorf("re-delivered import: %+v, %v", again, err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := dst.Status(); st.Trained {
			if len(st.Users) != 1 || st.Users[0] != user || st.TotalImages != 6 {
				t.Errorf("destination status %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("destination never trained after import")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := dst.Authenticate(ctx, &proto.AuthRequest{Capture: wireCapture(t, user, 3, 3, 77)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-handoff auth: accepted=%v id=%d score=%.3f", resp.Accepted, resp.UserID, resp.GateScore)
	if resp.Accepted && resp.UserID != user {
		t.Errorf("accepted as wrong user %d", resp.UserID)
	}

	// Malformed handoffs are refused before touching state.
	if _, err := src.handoff(&proto.HandoffRequest{UserID: user}); err == nil {
		t.Error("handoff with neither export nor state accepted")
	}
	if _, err := src.handoff(&proto.HandoffRequest{UserID: user, Export: true, State: exp.State}); err == nil {
		t.Error("handoff with both export and state accepted")
	}
	if _, err := dst.handoff(&proto.HandoffRequest{UserID: 99, State: exp.State}); err == nil {
		t.Error("import addressed to the wrong user accepted")
	}
	if _, err := src.handoff(&proto.HandoffRequest{UserID: 41, Export: true}); err == nil {
		t.Error("export of an unenrolled user accepted")
	}
}
