// Package daemon implements the EchoImage authentication service: it owns
// the sensing pipeline and the trained classifier stack, accumulates
// enrollment, and answers enroll/authenticate/status requests over the
// length-prefixed JSON protocol of internal/proto.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"

	"echoimage/internal/core"
	"echoimage/internal/proto"
)

// Server is the daemon state. Construct with New; methods are safe for
// concurrent connections.
type Server struct {
	sys     *core.System
	authCfg core.AuthConfig
	logf    func(format string, args ...any)
	// ModelPath, when set, receives a serialized copy of the model after
	// every successful retrain.
	ModelPath string

	mu         sync.Mutex
	enrollment map[int][]*core.AcousticImage
	auth       *core.Authenticator
	numImages  int
}

// New builds a server around a sensing pipeline. logf may be nil to
// silence logging.
func New(sys *core.System, authCfg core.AuthConfig, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		sys:        sys,
		authCfg:    authCfg,
		logf:       logf,
		enrollment: make(map[int][]*core.AcousticImage),
	}
}

// Serve accepts connections until the context is cancelled or the listener
// fails. It closes the listener on cancellation and waits for in-flight
// connections before returning.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-done:
		}
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("daemon: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection's request loop.
func (s *Server) ServeConn(conn io.ReadWriter) {
	pc := proto.NewConn(conn)
	for {
		env, err := pc.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("daemon: receive: %v", err)
			}
			return
		}
		if err := s.handle(pc, env); err != nil {
			s.logf("daemon: %v", err)
			if sendErr := pc.Send(proto.TypeError, proto.ErrorResponse{Message: err.Error()}); sendErr != nil {
				return
			}
		}
	}
}

func (s *Server) handle(pc *proto.Conn, env *proto.Envelope) error {
	switch env.Type {
	case proto.TypeEnrollRequest:
		var req proto.EnrollRequest
		if err := proto.DecodeBody(env, &req); err != nil {
			return err
		}
		resp, err := s.Enroll(&req)
		if err != nil {
			return err
		}
		return pc.Send(proto.TypeEnrollResponse, resp)
	case proto.TypeAuthRequest:
		var req proto.AuthRequest
		if err := proto.DecodeBody(env, &req); err != nil {
			return err
		}
		resp, err := s.Authenticate(&req)
		if err != nil {
			return err
		}
		return pc.Send(proto.TypeAuthResponse, resp)
	case proto.TypeStatusRequest:
		return pc.Send(proto.TypeStatusResponse, s.Status())
	default:
		return fmt.Errorf("unknown message type %q", env.Type)
	}
}

func (s *Server) process(wire *proto.CaptureWire) (*core.ProcessResult, error) {
	cap := &core.Capture{Beeps: wire.Beeps, SampleRate: wire.SampleRate, Reference: wire.Reference}
	res, err := s.sys.Process(cap, wire.NoiseOnly)
	if err != nil {
		return nil, fmt.Errorf("process capture: %w", err)
	}
	return res, nil
}

// Enroll adds a capture to a user's enrollment pool, optionally retraining.
func (s *Server) Enroll(req *proto.EnrollRequest) (*proto.EnrollResponse, error) {
	if req.UserID <= 0 {
		return nil, fmt.Errorf("user ID %d must be positive", req.UserID)
	}
	res, err := s.process(&req.Capture)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enrollment[req.UserID] = append(s.enrollment[req.UserID], res.Images...)
	s.numImages += len(res.Images)
	trained := false
	if req.Retrain {
		auth, err := core.TrainAuthenticator(s.authCfg, s.enrollment)
		if err != nil {
			return nil, fmt.Errorf("retrain: %w", err)
		}
		s.auth = auth
		trained = true
		if s.ModelPath != "" {
			if err := s.persistLocked(); err != nil {
				s.logf("daemon: persist model: %v", err)
			}
		}
	}
	return &proto.EnrollResponse{
		UserID:      req.UserID,
		Images:      len(res.Images),
		DistanceM:   res.Distance.UserM,
		Trained:     trained,
		TotalUsers:  len(s.enrollment),
		TotalImages: s.numImages,
	}, nil
}

// Authenticate runs a capture through the trained model.
func (s *Server) Authenticate(req *proto.AuthRequest) (*proto.AuthResponse, error) {
	s.mu.Lock()
	auth := s.auth
	s.mu.Unlock()
	if auth == nil {
		return nil, fmt.Errorf("no trained model: enroll users with retrain=true first")
	}
	res, err := s.process(&req.Capture)
	if err != nil {
		return nil, err
	}
	decision, err := auth.AuthenticateMajority(res.Images)
	if err != nil {
		return nil, fmt.Errorf("authenticate: %w", err)
	}
	return &proto.AuthResponse{
		Accepted:  decision.Accepted,
		UserID:    decision.UserID,
		GateScore: decision.GateScore,
		DistanceM: res.Distance.UserM,
		Images:    len(res.Images),
	}, nil
}

// persistLocked writes the current model to ModelPath; the caller holds
// s.mu.
func (s *Server) persistLocked() error {
	f, err := os.CreateTemp(filepath.Dir(s.ModelPath), ".model-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.auth.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.ModelPath)
}

// SaveModel serializes the trained model, or reports an error when no
// model has been trained yet.
func (s *Server) SaveModel(w io.Writer) error {
	s.mu.Lock()
	auth := s.auth
	s.mu.Unlock()
	if auth == nil {
		return fmt.Errorf("daemon: no trained model to save")
	}
	return auth.Save(w)
}

// LoadModel installs a previously saved model. Enrollment pools are not
// part of the model; subsequent retrains need fresh enrollment captures.
func (s *Server) LoadModel(r io.Reader) error {
	auth, err := core.LoadAuthenticator(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.auth = auth
	s.mu.Unlock()
	return nil
}

// Status reports the daemon state.
func (s *Server) Status() proto.StatusResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	users := make([]int, 0, len(s.enrollment))
	for id := range s.enrollment {
		users = append(users, id)
	}
	return proto.StatusResponse{
		Users:       users,
		Trained:     s.auth != nil,
		TotalImages: s.numImages,
	}
}
