// Package daemon is the transport layer of the EchoImage authentication
// service: framing, per-connection deadlines, bounded-concurrency capture
// processing and request dispatch over the protocol of internal/proto.
// All model state — enrollment pools, the live classifier, retrain
// scheduling and persistence — lives in internal/registry; the daemon
// only routes requests to it, so a retrain never blocks an authenticate.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"echoimage/internal/core"
	"echoimage/internal/proto"
	"echoimage/internal/registry"
	"echoimage/internal/telemetry"
)

// Options tunes the transport layer.
type Options struct {
	// ModelPath, when set, is written (atomically, by the registry
	// worker) after every successful retrain.
	ModelPath string
	// StateDir, when set, is the shard-local per-user state directory:
	// handoff exports/imports flush user blobs there and RestoreState
	// reloads them after a restart, so a drained or crashed shard's
	// enrollments survive.
	StateDir string
	// MaxCaptures bounds concurrent capture processing (the CPU-heavy
	// ranging + imaging stage). 0 means GOMAXPROCS.
	MaxCaptures int
	// ReadTimeout is the per-message idle deadline: a connection that
	// sends no complete request for this long is dropped. 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write. 0 disables.
	WriteTimeout time.Duration
	// RequestTimeout bounds the handling of a single request: the
	// per-request context passed into the sensing pipeline expires after
	// this long, stopping ranging/imaging mid-flight and answering
	// in-band with code `unavailable`. 0 disables.
	RequestTimeout time.Duration
	// QueueWait bounds how long a capture request may wait for a free
	// processing slot before being shed with code `overloaded`. 0 means
	// DefaultQueueWait; negative sheds immediately when saturated.
	QueueWait time.Duration
	// CaptureHold occupies each capture's processing slot for this extra
	// duration, modeling the non-CPU time a real capture spends on the
	// device — emitting the beep train and recording its echoes — which
	// the simulator's in-memory captures skip entirely. Default (0) is
	// off; it exists so load experiments on few-core machines can exhibit
	// the slot contention a real deployment has. Always stated in bench
	// reports when non-zero.
	CaptureHold time.Duration
	// ShutdownGrace is how long Serve waits, after cancellation, for
	// in-flight connections to finish their current request before
	// force-closing them. 0 means DefaultShutdownGrace.
	ShutdownGrace time.Duration
	// Train overrides the registry training function (tests).
	Train registry.TrainFunc
	// Telemetry receives the daemon's and registry's runtime metrics
	// (request counters, latency and pipeline-stage histograms, error
	// codes, retrain churn). Nil builds a private registry, still
	// readable via Server.Telemetry — instrumentation is always on, it
	// is only exposition that is optional.
	Telemetry *telemetry.Registry
}

// Defaults for the admission-control and shutdown knobs (picked for an
// interactive authentication budget: shed early, drain fast).
const (
	// DefaultQueueWait bounds the capture-slot wait when Options.QueueWait
	// is zero. Proximity authentication is interactive; a request that
	// cannot start processing within this budget is better answered
	// `overloaded` now than queued into uselessness.
	DefaultQueueWait = 2 * time.Second
	// DefaultShutdownGrace bounds the post-cancellation connection drain
	// when Options.ShutdownGrace is zero.
	DefaultShutdownGrace = 10 * time.Second
)

// Server is the daemon transport. Construct with New or NewWithOptions;
// methods are safe for concurrent connections.
type Server struct {
	sys         *core.System
	reg         *registry.Registry
	logf        func(format string, args ...any)
	readTO      time.Duration
	writeTO     time.Duration
	requestTO   time.Duration
	queueWait   time.Duration
	captureHold time.Duration
	grace       time.Duration
	captureSem  chan struct{}
	tel         *telemetry.Registry
	met         serverMetrics
	traces      *telemetry.TraceLog
	stopping    atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // guarded by connMu
}

// New builds a server with default options around a sensing pipeline.
// logf may be nil to silence logging.
func New(sys *core.System, authCfg core.AuthConfig, logf func(string, ...any)) *Server {
	return NewWithOptions(sys, authCfg, logf, Options{})
}

// NewWithOptions builds a server. Call Close when done to stop the
// registry's retrain worker.
func NewWithOptions(sys *core.System, authCfg core.AuthConfig, logf func(string, ...any), opts Options) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	maxCap := opts.MaxCaptures
	if maxCap <= 0 {
		maxCap = runtime.GOMAXPROCS(0)
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	queueWait := opts.QueueWait
	if queueWait == 0 {
		queueWait = DefaultQueueWait
	}
	grace := opts.ShutdownGrace
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	return &Server{
		sys: sys,
		reg: registry.New(authCfg, registry.Options{
			ModelPath: opts.ModelPath,
			StateDir:  opts.StateDir,
			Train:     opts.Train,
			Logf:      logf,
			Telemetry: tel,
		}),
		logf:        logf,
		readTO:      opts.ReadTimeout,
		writeTO:     opts.WriteTimeout,
		requestTO:   opts.RequestTimeout,
		queueWait:   queueWait,
		captureHold: opts.CaptureHold,
		grace:       grace,
		captureSem:  make(chan struct{}, maxCap),
		tel:         tel,
		met:         newServerMetrics(tel),
		traces:      telemetry.NewTraceLog(traceCapacity),
		conns:       make(map[net.Conn]struct{}),
	}
}

// Registry exposes the model registry (status inspection, tests).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Telemetry exposes the metric registry the daemon records into, for
// serving /metrics and /varz on an admin listener.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Traces exposes the ring of recent per-request pipeline traces.
func (s *Server) Traces() *telemetry.TraceLog { return s.traces }

// Close stops the background retrain worker, cancelling any in-flight
// train. In-flight connections are not interrupted.
func (s *Server) Close() {
	s.stopping.Store(true)
	s.reg.Close()
}

// Healthy reports whether the daemon should receive traffic; it is the
// Health hook for the admin listener's /healthz, which the cluster
// router's prober polls. A shutting-down daemon answers unhealthy the
// moment cancellation is observed — before the connection drain finishes
// — so routers stop sending new work while in-flight requests complete.
func (s *Server) Healthy() error {
	if s.stopping.Load() {
		return fmt.Errorf("daemon: shutting down")
	}
	return nil
}

// Serve accepts connections until the context is cancelled or the
// listener fails. On cancellation it closes the listener, lets in-flight
// connections finish their current request (ServeConn observes the
// cancellation before reading another), and force-closes any connection
// still alive after the shutdown grace period, so Serve always returns
// within roughly Options.ShutdownGrace of the cancellation.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.stopping.Store(true)
			ln.Close()
		case <-done:
		}
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				s.drain(&wg)
				return nil
			}
			wg.Wait()
			return fmt.Errorf("daemon: accept: %w", err)
		}
		s.trackConn(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.trackConn(conn, false)
			defer conn.Close()
			s.ServeConn(ctx, conn)
		}()
	}
}

// drain waits up to the shutdown grace period for connection goroutines,
// then force-closes the stragglers and waits for them to unwind.
func (s *Server) drain(wg *sync.WaitGroup) {
	idle := make(chan struct{})
	go func() {
		wg.Wait()
		close(idle)
	}()
	timer := time.NewTimer(s.grace)
	defer timer.Stop()
	select {
	case <-idle:
		return
	case <-timer.C:
	}
	s.connMu.Lock()
	n := len(s.conns)
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	if n > 0 {
		s.logf("daemon: shutdown grace %v expired, force-closed %d connections", s.grace, n)
	}
	<-idle
}

func (s *Server) trackConn(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connMu.Unlock()
}

// deadlineConn is the subset of net.Conn the transport needs for
// timeouts; loopback test pipes satisfy it, plain io.ReadWriter pairs
// silently skip deadlines.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// srvError pairs a failure with its stable protocol code.
type srvError struct {
	code string
	err  error
}

func (e *srvError) Error() string { return e.err.Error() }
func (e *srvError) Unwrap() error { return e.err }

func coded(code string, err error) *srvError { return &srvError{code: code, err: err} }

// ServeConn handles one connection's request loop under ctx: each request
// is read (under the idle deadline), dispatched under a per-request
// context (connection context capped by Options.RequestTimeout), and
// answered with the client's request ID echoed. Errors are answered
// in-band with a stable code; only transport failures drop the
// connection. Cancelling ctx wins over the idle-deadline re-arm: the loop
// observes the cancellation before reading another request, so an
// actively-sending connection still drains promptly on shutdown.
func (s *Server) ServeConn(ctx context.Context, conn io.ReadWriter) {
	s.met.connsTotal.Inc()
	s.met.connsActive.Inc()
	defer s.met.connsActive.Dec()
	pc := proto.NewConn(conn)
	dl, hasDeadlines := conn.(deadlineConn)
	// A connection accepted before shutdown may outlive ctx; cap reads so
	// the serve loop notices cancellation instead of blocking forever.
	stop := context.AfterFunc(ctx, func() {
		if hasDeadlines {
			dl.SetReadDeadline(time.Now())
		}
	})
	defer stop()
	for {
		if ctx.Err() != nil {
			return
		}
		if hasDeadlines && s.readTO > 0 {
			dl.SetReadDeadline(time.Now().Add(s.readTO))
			// The AfterFunc's immediate deadline may have fired between
			// the check above and the re-arm, in which case the re-arm
			// just erased it. Re-assert so cancellation always wins and
			// the idle deadline can never push shutdown out.
			if ctx.Err() != nil {
				dl.SetReadDeadline(time.Now())
			}
		}
		env, err := pc.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) && ctx.Err() == nil {
				s.logf("daemon: receive: %v", err)
			}
			return
		}
		// Each request gets a trace keyed by its request ID; the stage
		// recorder feeds both the shared latency histograms and the trace.
		// The request context inherits the connection's (cancelled on
		// shutdown) and is capped by the request timeout, so a slow or
		// abandoned request stops burning pipeline CPU.
		start := time.Now()
		tr := telemetry.NewTrace(env.RequestID, string(env.Type))
		reqCtx, cancelReq := s.requestContext(ctx)
		s.met.inflight.Inc()
		resp, herr := s.handle(reqCtx, env, &stageRecorder{stages: s.met.stages, tr: tr})
		s.met.inflight.Dec()
		cancelReq()
		s.met.requestCounter(env.Type).Inc()
		s.met.requestLatency(env.Type).ObserveDuration(time.Since(start))
		var errCode string
		if herr != nil {
			errCode = proto.CodeInternal
			var se *srvError
			if errors.As(herr, &se) {
				errCode = se.code
			}
			s.met.errorCounter(errCode).Inc()
			s.logf("daemon: %s: %v", env.Type, herr)
			resp = reply(env, proto.TypeError)
			if resp, err = withBody(resp, proto.ErrorResponse{Code: errCode, Message: herr.Error()}); err != nil {
				s.logf("daemon: encode error response: %v", err)
				return
			}
		}
		s.traces.Add(tr.Finish(errCode))
		if hasDeadlines && s.writeTO > 0 {
			dl.SetWriteDeadline(time.Now().Add(s.writeTO))
		}
		if err := pc.SendEnvelope(resp); err != nil {
			if ctx.Err() == nil {
				s.logf("daemon: send: %v", err)
			}
			return
		}
	}
}

// reply shapes a response envelope for a request: v2 requests get the
// daemon's version and their request ID echoed; v1 requests (no version
// field) get a bare v1 envelope, byte-compatible with the old protocol.
func reply(req *proto.Envelope, msgType proto.MsgType) *proto.Envelope {
	resp := &proto.Envelope{Type: msgType}
	if req.Version >= 2 {
		resp.Version = proto.Version
		resp.RequestID = req.RequestID
	}
	return resp
}

func withBody(env *proto.Envelope, body any) (*proto.Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, coded(proto.CodeInternal, fmt.Errorf("marshal %s body: %w", env.Type, err))
	}
	env.Body = raw
	return env, nil
}

// handle dispatches one request and returns the response envelope. The
// returned error carries a stable code for the in-band error reply. rec
// receives pipeline stage timings for capture-processing requests.
func (s *Server) handle(ctx context.Context, env *proto.Envelope, rec core.StageRecorder) (*proto.Envelope, error) {
	switch env.Type {
	case proto.TypeEnrollRequest:
		var req proto.EnrollRequest
		if err := proto.DecodeBody(env, &req); err != nil {
			return nil, coded(proto.CodeBadRequest, err)
		}
		// v1 semantics: retrain completes before the response. v2 queues
		// the retrain on the registry worker and responds immediately.
		resp, err := s.enroll(ctx, &req, env.Version < 2, rec)
		if err != nil {
			return nil, err
		}
		return withBody(reply(env, proto.TypeEnrollResponse), resp)
	case proto.TypeAuthRequest:
		var req proto.AuthRequest
		if err := proto.DecodeBody(env, &req); err != nil {
			return nil, coded(proto.CodeBadRequest, err)
		}
		resp, err := s.authenticate(ctx, &req, rec)
		if err != nil {
			return nil, err
		}
		return withBody(reply(env, proto.TypeAuthResponse), resp)
	case proto.TypeStatusRequest:
		return withBody(reply(env, proto.TypeStatusResponse), s.Status())
	case proto.TypeRetrainRequest:
		var req proto.RetrainRequest
		if len(env.Body) > 0 {
			if err := proto.DecodeBody(env, &req); err != nil {
				return nil, coded(proto.CodeBadRequest, err)
			}
		}
		resp, err := s.retrain(ctx, &req)
		if err != nil {
			return nil, err
		}
		return withBody(reply(env, proto.TypeRetrainResponse), resp)
	case proto.TypeModelInfoRequest:
		return withBody(reply(env, proto.TypeModelInfoResponse), s.ModelInfo())
	case proto.TypeHandoffRequest:
		var req proto.HandoffRequest
		if err := proto.DecodeBody(env, &req); err != nil {
			return nil, coded(proto.CodeBadRequest, err)
		}
		resp, err := s.handoff(&req)
		if err != nil {
			return nil, err
		}
		return withBody(reply(env, proto.TypeHandoffResponse), resp)
	default:
		return nil, coded(proto.CodeUnknownType, fmt.Errorf("unknown message type %q", env.Type))
	}
}

// requestContext derives the per-request context from the connection
// context, capped by the request timeout when one is configured.
func (s *Server) requestContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.requestTO > 0 {
		return context.WithTimeout(ctx, s.requestTO)
	}
	return context.WithCancel(ctx)
}

// process runs the sensing pipeline on a capture under the concurrency
// semaphore, so a burst of connections cannot oversubscribe the imaging
// worker pools. Admission is bounded-wait: a request that cannot get a
// processing slot within the queue-wait budget is shed with the stable
// `overloaded` code instead of queueing without limit, keeping tail
// latency bounded under saturation (the client retries with backoff).
func (s *Server) process(ctx context.Context, wire *proto.CaptureWire, rec core.StageRecorder) (*core.ProcessResult, error) {
	select {
	case s.captureSem <- struct{}{}:
	case <-ctx.Done():
		return nil, coded(proto.CodeUnavailable, ctx.Err())
	default:
		s.met.queueDepth.Inc()
		var waitCh <-chan time.Time
		if s.queueWait > 0 {
			timer := time.NewTimer(s.queueWait)
			defer timer.Stop()
			waitCh = timer.C
		} else {
			closed := make(chan time.Time)
			close(closed)
			waitCh = closed
		}
		select {
		case s.captureSem <- struct{}{}:
			s.met.queueDepth.Dec()
		case <-waitCh:
			s.met.queueDepth.Dec()
			s.met.shedTotal.Inc()
			return nil, coded(proto.CodeOverloaded,
				fmt.Errorf("capture queue full: no processing slot within %v", s.queueWait))
		case <-ctx.Done():
			s.met.queueDepth.Dec()
			return nil, coded(proto.CodeUnavailable, ctx.Err())
		}
	}
	defer func() { <-s.captureSem }()
	if s.captureHold > 0 {
		// Model the on-device acquisition time inside the slot (see
		// Options.CaptureHold). Cancellation still wins.
		timer := time.NewTimer(s.captureHold)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, coded(proto.CodeUnavailable, fmt.Errorf("request cancelled: %w", ctx.Err()))
		}
	}
	cap := &core.Capture{Beeps: wire.Beeps, SampleRate: wire.SampleRate, Reference: wire.Reference}
	res, err := s.sys.ProcessRecordedContext(ctx, cap, wire.NoiseOnly, rec)
	if err != nil {
		if ctx.Err() != nil {
			// Shutdown or request deadline: the pipeline was cancelled
			// mid-flight, not broken — answer retryable, not process_failed.
			return nil, coded(proto.CodeUnavailable, fmt.Errorf("request cancelled: %w", err))
		}
		return nil, coded(proto.CodeProcess, fmt.Errorf("process capture: %w", err))
	}
	return res, nil
}

// Enroll adds a capture to a user's enrollment pool with v1 semantics:
// when retrain is requested, the new model is live before Enroll returns.
func (s *Server) Enroll(ctx context.Context, req *proto.EnrollRequest) (*proto.EnrollResponse, error) {
	return s.enroll(ctx, req, true, s.stageOnly())
}

// stageOnly is the recorder for direct API calls: stage histograms move,
// but no trace is collected (traces belong to transport requests).
func (s *Server) stageOnly() core.StageRecorder {
	return &stageRecorder{stages: s.met.stages}
}

func (s *Server) enroll(ctx context.Context, req *proto.EnrollRequest, syncRetrain bool, rec core.StageRecorder) (*proto.EnrollResponse, error) {
	if req.UserID <= 0 {
		return nil, coded(proto.CodeBadRequest, fmt.Errorf("user ID %d must be positive", req.UserID))
	}
	res, err := s.process(ctx, &req.Capture, rec)
	if err != nil {
		return nil, err
	}
	if err := s.reg.AddImages(req.UserID, res.Images); err != nil {
		return nil, coded(proto.CodeUnavailable, err)
	}
	resp := &proto.EnrollResponse{
		UserID:    req.UserID,
		Images:    len(res.Images),
		DistanceM: res.Distance.UserM,
	}
	if req.Retrain {
		if syncRetrain {
			if err := s.reg.Retrain(ctx); err != nil {
				return nil, coded(proto.CodeTrain, fmt.Errorf("retrain: %w", err))
			}
			resp.Trained = true
		} else {
			if err := s.reg.RequestRetrain(); err != nil {
				return nil, coded(proto.CodeUnavailable, err)
			}
			resp.RetrainQueued = true
		}
	}
	stats := s.reg.Stats()
	resp.TotalUsers = len(stats.Users)
	resp.TotalImages = stats.Images
	return resp, nil
}

// Authenticate runs a capture through the live model snapshot. It never
// waits on training: the previous model answers until the registry swaps
// in the next one.
func (s *Server) Authenticate(ctx context.Context, req *proto.AuthRequest) (*proto.AuthResponse, error) {
	return s.authenticate(ctx, req, s.stageOnly())
}

func (s *Server) authenticate(ctx context.Context, req *proto.AuthRequest, rec core.StageRecorder) (*proto.AuthResponse, error) {
	snap := s.reg.Snapshot()
	if snap == nil {
		return nil, coded(proto.CodeNotTrained, fmt.Errorf("no trained model: enroll users with retrain=true first"))
	}
	res, err := s.process(ctx, &req.Capture, rec)
	if err != nil {
		return nil, err
	}
	decision, err := snap.Auth.AuthenticateMajorityRecorded(res.Images, rec)
	if err != nil {
		return nil, coded(proto.CodeInternal, fmt.Errorf("authenticate: %w", err))
	}
	return &proto.AuthResponse{
		Accepted:     decision.Accepted,
		UserID:       decision.UserID,
		GateScore:    decision.GateScore,
		DistanceM:    res.Distance.UserM,
		Images:       len(res.Images),
		ModelVersion: snap.Info.Version,
	}, nil
}

// retrain serves the v2 retrain message.
func (s *Server) retrain(ctx context.Context, req *proto.RetrainRequest) (*proto.RetrainResponse, error) {
	if req.Wait {
		if err := s.reg.Retrain(ctx); err != nil {
			return nil, coded(proto.CodeTrain, fmt.Errorf("retrain: %w", err))
		}
	} else if err := s.reg.RequestRetrain(); err != nil {
		return nil, coded(proto.CodeUnavailable, err)
	}
	resp := &proto.RetrainResponse{Queued: !req.Wait}
	if snap := s.reg.Snapshot(); snap != nil {
		resp.ModelVersion = snap.Info.Version
	}
	return resp, nil
}

// handoff serves the v2 administrative handoff message, moving one user's
// shard-local state in (install a blob from a draining peer) or out
// (flush and return this shard's blob for the user). Errors map to the
// stable codes the router's drain pipeline acts on: a malformed or
// conflicting blob and an export of an unknown user are permanent
// (bad_request), a closing registry is retryable (unavailable).
func (s *Server) handoff(req *proto.HandoffRequest) (*proto.HandoffResponse, error) {
	if req.UserID <= 0 && req.Export {
		return nil, coded(proto.CodeBadRequest, fmt.Errorf("handoff export: user ID %d must be positive", req.UserID))
	}
	switch {
	case req.Export && len(req.State) > 0:
		return nil, coded(proto.CodeBadRequest, fmt.Errorf("handoff carries both export and state"))
	case req.Export:
		blob, images, err := s.reg.FlushUser(req.UserID)
		if err != nil {
			if errors.Is(err, registry.ErrClosed) {
				return nil, coded(proto.CodeUnavailable, err)
			}
			return nil, coded(proto.CodeBadRequest, err)
		}
		return &proto.HandoffResponse{UserID: req.UserID, State: blob, Images: images}, nil
	case len(req.State) > 0:
		id, images, imported, err := s.reg.ImportUser(req.State)
		if err != nil {
			if errors.Is(err, registry.ErrClosed) {
				return nil, coded(proto.CodeUnavailable, err)
			}
			return nil, coded(proto.CodeBadRequest, err)
		}
		if req.UserID != 0 && id != req.UserID {
			return nil, coded(proto.CodeBadRequest,
				fmt.Errorf("handoff addressed to user %d carries state of user %d", req.UserID, id))
		}
		resp := &proto.HandoffResponse{UserID: id, Images: images, Imported: imported}
		if imported {
			// Converge the model in the background; the mover may also issue
			// an explicit blocking retrain for a deterministic finish.
			if err := s.reg.RequestRetrain(); err == nil {
				resp.RetrainQueued = true
			}
		}
		return resp, nil
	default:
		return nil, coded(proto.CodeBadRequest, fmt.Errorf("handoff carries neither export nor state"))
	}
}

// RestoreState reloads per-user state blobs from the configured state
// directory into the enrollment store and, when anything was restored,
// queues a retrain so the model converges to cover the restored users.
// It returns how many users were restored; a partially failed restore
// still loads the healthy blobs.
func (s *Server) RestoreState() (int, error) {
	restored, err := s.reg.RestoreState()
	if restored > 0 {
		if rerr := s.reg.RequestRetrain(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return restored, err
}

// SaveModel serializes the live model, or reports an error when no model
// has been trained yet.
func (s *Server) SaveModel(w io.Writer) error {
	snap := s.reg.Snapshot()
	if snap == nil {
		return fmt.Errorf("daemon: no trained model to save")
	}
	return snap.Auth.Save(w)
}

// LoadModel installs a previously saved model. Enrollment pools are not
// part of the model; subsequent retrains need fresh enrollment captures.
func (s *Server) LoadModel(r io.Reader) error {
	auth, err := core.LoadAuthenticator(r)
	if err != nil {
		return err
	}
	s.reg.Install(auth)
	return nil
}

// Status reports the daemon state from atomic snapshots only — it never
// contends with enrollment, training or persistence.
func (s *Server) Status() proto.StatusResponse {
	stats := s.reg.Stats()
	resp := proto.StatusResponse{
		Users:       stats.Users,
		TotalImages: stats.Images,
	}
	if resp.Users == nil {
		resp.Users = []int{}
	}
	if snap := s.reg.Snapshot(); snap != nil {
		resp.Trained = true
		resp.ModelVersion = snap.Info.Version
	}
	return resp
}

// ModelInfo reports per-version metadata of the live model.
func (s *Server) ModelInfo() proto.ModelInfoResponse {
	var resp proto.ModelInfoResponse
	if snap := s.reg.Snapshot(); snap != nil {
		resp.Trained = true
		resp.ModelVersion = snap.Info.Version
		resp.Users = snap.Info.Users
		resp.Images = snap.Info.Images
		resp.TrainMillis = snap.Info.TrainDuration.Milliseconds()
		resp.TrainedAt = snap.Info.TrainedAt.UTC().Format(time.RFC3339)
		resp.Loaded = snap.Info.Loaded
		resp.Extended = snap.Info.Extended
		resp.IdentifyMode = snap.Info.IdentifyMode
		resp.IndexSize = snap.Info.IndexSize
	}
	if err := s.reg.LastError(); err != nil {
		resp.LastError = err.Error()
	}
	return resp
}
