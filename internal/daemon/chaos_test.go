package daemon

// Chaos tests for the fault-tolerant serving stack: shutdown liveness
// against busy connections, per-request cancellation, bounded-wait
// admission control (load shedding + backoff retry), and mid-frame
// disconnects injected through internal/faultnet. All of them are
// deterministic — faults are injected by explicit byte counts, channel
// holds and context cancellations, never by racing real load — and the
// whole file is meant to run under -race (make race).

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"echoimage/internal/faultnet"
	"echoimage/internal/proto"
	"echoimage/internal/telemetry"
)

// busyClient keeps a status-request conversation running as fast as the
// daemon answers, until its connection dies. It returns the number of
// completed round trips.
func busyClient(conn net.Conn, done chan<- int) {
	pc := proto.NewConn(conn)
	n := 0
	for {
		if err := pc.Send(proto.TypeStatusRequest, nil); err != nil {
			break
		}
		if _, err := pc.Receive(); err != nil {
			break
		}
		n++
	}
	done <- n
}

// TestServeConnExitsOnCancelDespiteTraffic is the regression test for the
// shutdown-liveness bug: with an idle deadline configured, every request
// used to re-arm the read deadline and erase the immediate deadline set by
// the cancellation AfterFunc, so a connection that kept completing
// requests ignored shutdown forever. The fixed loop observes ctx before
// (and re-asserts after) each re-arm, so cancellation wins mid-conversation.
func TestServeConnExitsOnCancelDespiteTraffic(t *testing.T) {
	srv := testServer(t, Options{ReadTimeout: time.Minute})
	client, server := net.Pipe()
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan struct{})
	go func() {
		srv.ServeConn(ctx, server)
		server.Close()
		close(served)
	}()
	rounds := make(chan int, 1)
	go busyClient(client, rounds)

	// Let the conversation get going, then pull the plug mid-stream.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn kept serving an actively-sending connection after cancellation")
	}
	if n := <-rounds; n == 0 {
		t.Error("client never completed a round trip before shutdown (test raced)")
	}
}

// TestServeShutdownDrainsBusyConnections proves the Serve-level guarantee:
// SIGTERM-style cancellation returns from Serve within the configured
// grace period even while connections are mid-conversation, and the
// drained clients see their connections die rather than hanging.
func TestServeShutdownDrainsBusyConnections(t *testing.T) {
	srv := testServer(t, Options{ReadTimeout: time.Minute, ShutdownGrace: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	const clients = 3
	rounds := make(chan int, clients)
	for i := 0; i < clients; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		go busyClient(conn, rounds)
	}
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Serve did not drain busy connections within the grace period")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("drain took %v, want well under grace + margin", elapsed)
	}
	total := 0
	for i := 0; i < clients; i++ {
		select {
		case n := <-rounds:
			total += n
		case <-time.After(5 * time.Second):
			t.Fatal("busy client still running after Serve returned")
		}
	}
	if total == 0 {
		t.Error("no client completed a round trip before shutdown (test raced)")
	}
}

// TestRequestTimeoutCancelsPipeline saturates nothing and breaks nothing:
// it simply configures a request deadline far smaller than capture
// processing and proves the daemon answers in-band with the retryable
// `unavailable` code instead of burning the full imaging cost — the
// per-request context reached the pipeline.
func TestRequestTimeoutCancelsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{RequestTimeout: time.Millisecond})
	client, server := net.Pipe()
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		srv.ServeConn(ctx, server)
		server.Close()
	}()

	pc := proto.NewConn(client)
	resp := v2call(t, pc, proto.TypeEnrollRequest, "deadline-1", proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 4, 3),
	})
	if resp.Type != proto.TypeError {
		t.Fatalf("deadline-bound enroll answered %q, want error", resp.Type)
	}
	var perr proto.ErrorResponse
	if err := proto.DecodeBody(resp, &perr); err != nil {
		t.Fatal(err)
	}
	if perr.Code != proto.CodeUnavailable {
		t.Errorf("error code %q, want %q", perr.Code, proto.CodeUnavailable)
	}
	if !proto.RetryableCode(perr.Code) {
		t.Error("request-deadline error must be retryable")
	}
	if got := srv.Telemetry().Counter("echoimage_daemon_errors_total", "",
		telemetry.L("code", proto.CodeUnavailable)).Value(); got == 0 {
		t.Error("unavailable error counter did not move")
	}
}

// TestOverloadShedsThenBackoffSucceeds drives the admission-control
// contract end to end: with every capture slot held, a request is shed
// with the stable `overloaded` code within the queue-wait budget (not
// queued forever); once a slot frees, the client's exponential-backoff
// retry — the same policy echoimage-client ships — succeeds.
func TestOverloadShedsThenBackoffSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{MaxCaptures: 1, QueueWait: 50 * time.Millisecond})
	client, server := net.Pipe()
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		srv.ServeConn(ctx, server)
		server.Close()
	}()
	pc := proto.NewConn(client)
	wire := wireCapture(t, 1, 1, 4, 5)

	// Saturate: hold the only capture slot, as a wedged in-flight capture
	// would.
	srv.captureSem <- struct{}{}

	resp := v2call(t, pc, proto.TypeEnrollRequest, "shed-1", proto.EnrollRequest{UserID: 1, Capture: wire})
	if resp.Type != proto.TypeError {
		t.Fatalf("saturated enroll answered %q, want error", resp.Type)
	}
	var perr proto.ErrorResponse
	if err := proto.DecodeBody(resp, &perr); err != nil {
		t.Fatal(err)
	}
	if perr.Code != proto.CodeOverloaded {
		t.Fatalf("error code %q, want %q", perr.Code, proto.CodeOverloaded)
	}
	tel := srv.Telemetry()
	if got := tel.Counter("echoimage_daemon_requests_shed_total", "").Value(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}
	if got := tel.Counter("echoimage_daemon_errors_total", "",
		telemetry.L("code", proto.CodeOverloaded)).Value(); got != 1 {
		t.Errorf("overloaded error counter %d, want 1", got)
	}
	if got := tel.Gauge("echoimage_daemon_capture_queue_depth", "").Value(); got != 0 {
		t.Errorf("queue depth gauge %d after shed, want 0", got)
	}

	// Release the slot and retry with exponential backoff + jitter,
	// mirroring the client's policy. The first retry may still race the
	// release; the sequence must converge well before the attempts run out.
	<-srv.captureSem
	backoff := 25 * time.Millisecond
	var ok bool
	for attempt := 0; attempt < 6; attempt++ {
		resp = v2call(t, pc, proto.TypeEnrollRequest, "retry", proto.EnrollRequest{UserID: 1, Capture: wire})
		if resp.Type == proto.TypeEnrollResponse {
			ok = true
			break
		}
		var e proto.ErrorResponse
		if err := proto.DecodeBody(resp, &e); err != nil {
			t.Fatal(err)
		}
		if !proto.RetryableCode(e.Code) {
			t.Fatalf("retry hit non-retryable code %q", e.Code)
		}
		time.Sleep(backoff + backoff/2)
		backoff *= 2
	}
	if !ok {
		t.Fatal("backoff retry never succeeded after the slot freed")
	}
	if got := tel.Gauge("echoimage_daemon_capture_queue_depth", "").Value(); got != 0 {
		t.Errorf("queue depth gauge %d at rest, want 0", got)
	}
}

// TestMidFrameDisconnectDoesNotWedge cuts connections in the middle of an
// enroll frame — the failure a crashing client produces — and proves the
// daemon neither leaks a capture-semaphore slot nor corrupts the next
// connection: with MaxCaptures=1, a single wedged slot would make the
// follow-up enroll shed, and any framing corruption would break its
// round trip.
func TestMidFrameDisconnectDoesNotWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{MaxCaptures: 1, QueueWait: 250 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	wire := wireCapture(t, 1, 1, 4, 11)
	env, err := proto.NewEnvelope(proto.TypeEnrollRequest, "doomed", proto.EnrollRequest{UserID: 1, Capture: wire})
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := proto.WriteEnvelope(&frame, env); err != nil {
		t.Fatal(err)
	}

	// Three clients die at different points inside the frame: just past
	// the length prefix, mid-payload, and one byte short of completion.
	for _, cutAt := range []int64{6, int64(frame.Len()) / 2, int64(frame.Len()) - 1} {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fc := faultnet.Wrap(raw, faultnet.Faults{CutAfterWriteBytes: cutAt, WriteChunk: 4096, Seed: cutAt})
		_, werr := fc.Write(frame.Bytes())
		if !errors.Is(werr, faultnet.ErrCut) {
			t.Fatalf("cut at %d: write error %v, want ErrCut", cutAt, werr)
		}
		if got := fc.WroteBytes(); got != cutAt {
			t.Fatalf("cut at %d delivered %d bytes", cutAt, got)
		}
	}

	// The daemon must notice every dead connection (no goroutine parked on
	// a half-frame forever once the FIN arrives).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Telemetry().Gauge("echoimage_daemon_connections_active", "").Value() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connections from mid-frame disconnects never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(srv.captureSem) != 0 {
		t.Fatalf("%d capture slots wedged by mid-frame disconnects", len(srv.captureSem))
	}

	// A fresh connection gets full service: framing intact, slot free.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := proto.NewConn(conn)
	resp := v2call(t, pc, proto.TypeEnrollRequest, "clean-1", proto.EnrollRequest{UserID: 1, Capture: wire})
	if resp.Type != proto.TypeEnrollResponse {
		t.Fatalf("post-chaos enroll answered %q, want enroll_result", resp.Type)
	}
	var enrolled proto.EnrollResponse
	if err := proto.DecodeBody(resp, &enrolled); err != nil {
		t.Fatal(err)
	}
	if enrolled.Images != 4 {
		t.Errorf("post-chaos enroll produced %d images, want 4", enrolled.Images)
	}

	cancel()
	select {
	case <-serveDone:
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not stop")
	}
}
