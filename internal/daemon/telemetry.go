package daemon

import (
	"time"

	"echoimage/internal/core"
	"echoimage/internal/proto"
	"echoimage/internal/telemetry"
)

// traceCapacity is how many recent request traces the daemon retains
// for the admin /varz endpoint.
const traceCapacity = 128

// serverMetrics is the transport layer's instrumentation. Request types
// and error codes are closed sets, so every labelled series is
// registered up front and hot-path updates are map lookups over
// immutable maps plus one atomic op — no locks, no allocation.
type serverMetrics struct {
	connsActive *telemetry.Gauge
	connsTotal  *telemetry.Counter
	inflight    *telemetry.Gauge
	queueDepth  *telemetry.Gauge
	shedTotal   *telemetry.Counter

	requests     map[proto.MsgType]*telemetry.Counter
	requestsWild *telemetry.Counter
	latency      map[proto.MsgType]*telemetry.Histogram
	latencyWild  *telemetry.Histogram
	errors       map[string]*telemetry.Counter
	errorsWild   *telemetry.Counter

	stages map[string]*telemetry.Histogram
}

// requestTypes are the labelled request-type series; anything else
// (a bogus type answered with unknown_type) lands in the "other" series.
var requestTypes = []proto.MsgType{
	proto.TypeEnrollRequest,
	proto.TypeAuthRequest,
	proto.TypeStatusRequest,
	proto.TypeRetrainRequest,
	proto.TypeModelInfoRequest,
	proto.TypeHandoffRequest,
}

// errorCodes are the stable protocol error codes of internal/proto.
var errorCodes = []string{
	proto.CodeBadRequest,
	proto.CodeUnknownType,
	proto.CodeNotTrained,
	proto.CodeProcess,
	proto.CodeTrain,
	proto.CodeUnavailable,
	proto.CodeOverloaded,
	proto.CodeInternal,
}

// stageNames are the pipeline stages of internal/core, in order.
var stageNames = []string{
	core.StagePreprocess,
	core.StageRanging,
	core.StageImaging,
	core.StageFeatures,
	core.StageIndexSearch,
	core.StageClassify,
}

func newServerMetrics(tel *telemetry.Registry) serverMetrics {
	m := serverMetrics{
		connsActive: tel.Gauge("echoimage_daemon_connections_active",
			"Currently open client connections."),
		connsTotal: tel.Counter("echoimage_daemon_connections_total",
			"Client connections accepted since start."),
		inflight: tel.Gauge("echoimage_daemon_inflight_requests",
			"Requests currently being handled."),
		queueDepth: tel.Gauge("echoimage_daemon_capture_queue_depth",
			"Capture requests waiting for a processing slot."),
		shedTotal: tel.Counter("echoimage_daemon_requests_shed_total",
			"Capture requests shed with code overloaded because no processing slot freed within the queue-wait budget."),
		requests: make(map[proto.MsgType]*telemetry.Counter, len(requestTypes)),
		latency:  make(map[proto.MsgType]*telemetry.Histogram, len(requestTypes)),
		errors:   make(map[string]*telemetry.Counter, len(errorCodes)),
		stages:   make(map[string]*telemetry.Histogram, len(stageNames)),
	}
	const (
		reqName = "echoimage_daemon_requests_total"
		reqHelp = "Requests handled, by protocol message type."
		latName = "echoimage_daemon_request_seconds"
		latHelp = "Request handling latency, by protocol message type."
		errName = "echoimage_daemon_errors_total"
		errHelp = "Error responses sent, by stable protocol error code."
		stgName = "echoimage_pipeline_stage_seconds"
		stgHelp = "Authentication pipeline stage latency, per stage."
	)
	for _, t := range requestTypes {
		m.requests[t] = tel.Counter(reqName, reqHelp, telemetry.L("type", string(t)))
		m.latency[t] = tel.Histogram(latName, latHelp, nil, telemetry.L("type", string(t)))
	}
	m.requestsWild = tel.Counter(reqName, reqHelp, telemetry.L("type", "other"))
	m.latencyWild = tel.Histogram(latName, latHelp, nil, telemetry.L("type", "other"))
	for _, c := range errorCodes {
		m.errors[c] = tel.Counter(errName, errHelp, telemetry.L("code", c))
	}
	m.errorsWild = tel.Counter(errName, errHelp, telemetry.L("code", "other"))
	for _, s := range stageNames {
		m.stages[s] = tel.Histogram(stgName, stgHelp, nil, telemetry.L("stage", s))
	}
	return m
}

func (m *serverMetrics) requestCounter(t proto.MsgType) *telemetry.Counter {
	if c := m.requests[t]; c != nil {
		return c
	}
	return m.requestsWild
}

func (m *serverMetrics) requestLatency(t proto.MsgType) *telemetry.Histogram {
	if h := m.latency[t]; h != nil {
		return h
	}
	return m.latencyWild
}

func (m *serverMetrics) errorCounter(code string) *telemetry.Counter {
	if c := m.errors[code]; c != nil {
		return c
	}
	return m.errorsWild
}

// stageRecorder implements core.StageRecorder for one request: it feeds
// the per-stage latency histograms and, when a trace is attached, the
// request's trace spans.
type stageRecorder struct {
	stages map[string]*telemetry.Histogram
	tr     *telemetry.Trace
}

func (r *stageRecorder) RecordStage(stage string, d time.Duration) {
	if h := r.stages[stage]; h != nil {
		h.ObserveDuration(d)
	}
	if r.tr != nil {
		r.tr.RecordStage(stage, d)
	}
}
