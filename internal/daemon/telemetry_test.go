package daemon

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"echoimage/internal/core"
	"echoimage/internal/proto"
	"echoimage/internal/telemetry"
)

// errCounter reads the daemon's error-code counter for a stable code.
// Registry lookups are idempotent, so this returns the live counter.
func errCounter(srv *Server, code string) uint64 {
	return srv.Telemetry().Counter("echoimage_daemon_errors_total", "", telemetry.L("code", code)).Value()
}

// TestErrorResponsesCountAndEchoRequestID drives every cheap error path
// over a loopback connection and asserts two invariants per request: the
// matching error-code counter moves by exactly one, and the v2 request
// ID comes back on the error envelope.
func TestErrorResponsesCountAndEchoRequestID(t *testing.T) {
	srv := testServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := proto.NewConn(conn)

	cases := []struct {
		name     string
		reqID    string
		msgType  proto.MsgType
		body     any
		wantCode string
	}{
		{"unknown type", "rq-unknown", proto.MsgType("bogus"), nil, proto.CodeUnknownType},
		{"invalid user", "rq-user0", proto.TypeEnrollRequest, proto.EnrollRequest{UserID: 0}, proto.CodeBadRequest},
		{"missing body", "rq-nobody", proto.TypeAuthRequest, nil, proto.CodeBadRequest},
		{"untrained auth", "rq-untrained", proto.TypeAuthRequest, proto.AuthRequest{}, proto.CodeNotTrained},
	}
	for _, tc := range cases {
		before := errCounter(srv, tc.wantCode)
		env, err := proto.NewEnvelope(tc.msgType, tc.reqID, tc.body)
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.SendEnvelope(env); err != nil {
			t.Fatal(err)
		}
		resp, err := pc.Receive()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.Type != proto.TypeError {
			t.Fatalf("%s: answered with %q", tc.name, resp.Type)
		}
		if resp.RequestID != tc.reqID {
			t.Errorf("%s: error response request_id %q, want %q", tc.name, resp.RequestID, tc.reqID)
		}
		if resp.Version != proto.Version {
			t.Errorf("%s: error response version %d", tc.name, resp.Version)
		}
		var body proto.ErrorResponse
		if err := proto.DecodeBody(resp, &body); err != nil {
			t.Fatal(err)
		}
		if body.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, body.Code, tc.wantCode)
		}
		if got := errCounter(srv, tc.wantCode); got != before+1 {
			t.Errorf("%s: counter for %q went %d -> %d, want +1", tc.name, tc.wantCode, before, got)
		}
	}

	// Traces are kept for errored requests too, carrying the error code.
	var found bool
	for _, tr := range srv.Traces().Recent() {
		if tr.RequestID == "rq-untrained" && tr.Error == proto.CodeNotTrained {
			found = true
		}
	}
	if !found {
		t.Error("no trace recorded for the failed authenticate")
	}
}

// metricValue extracts one sample value from a Prometheus exposition.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsEndToEnd is the acceptance proof for the telemetry
// subsystem: it authenticates through a live daemon over TCP and asserts
// that GET /metrics on the admin handler exposes per-stage pipeline
// histograms, daemon error-code counters and registry retrain counters —
// all moved by the traffic — in valid Prometheus text format.
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{})
	ctx := context.Background()

	// Enroll + synchronous retrain so a model is live (one registry train).
	if _, err := srv.Enroll(ctx, &proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 6, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go srv.Serve(serveCtx, ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := proto.NewConn(conn)

	// One authenticate and one error over the live socket.
	resp := v2call(t, pc, proto.TypeAuthRequest, "e2e-auth", proto.AuthRequest{
		Capture: wireCapture(t, 1, 3, 3, 7),
	})
	if resp.Type != proto.TypeAuthResponse {
		t.Fatalf("auth answered with %q", resp.Type)
	}
	if errEnv := v2call(t, pc, proto.MsgType("nonsense"), "e2e-err", nil); errEnv.Type != proto.TypeError {
		t.Fatalf("bogus request answered with %q", errEnv.Type)
	}

	// Scrape the admin endpoints exactly as a Prometheus server would.
	admin := httptest.NewServer(telemetry.AdminHandler(telemetry.AdminOptions{
		Registry: srv.Telemetry(),
		Traces:   srv.Traces(),
	}))
	defer admin.Close()
	httpResp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Per-stage pipeline histograms: every stage of the authenticate
	// pipeline ran at least once.
	for _, stage := range []string{
		core.StagePreprocess, core.StageRanging, core.StageImaging,
		core.StageFeatures, core.StageClassify,
	} {
		series := `echoimage_pipeline_stage_seconds_count{stage="` + stage + `"}`
		if v := metricValue(t, text, series); v < 1 {
			t.Errorf("%s = %v, want >= 1", series, v)
		}
	}
	// Daemon request and error counters.
	if v := metricValue(t, text, `echoimage_daemon_requests_total{type="authenticate"}`); v != 1 {
		t.Errorf("authenticate requests %v, want 1", v)
	}
	if v := metricValue(t, text, `echoimage_daemon_errors_total{code="unknown_type"}`); v != 1 {
		t.Errorf("unknown_type errors %v, want 1", v)
	}
	if v := metricValue(t, text, `echoimage_daemon_request_seconds_count{type="authenticate"}`); v != 1 {
		t.Errorf("authenticate latency count %v, want 1", v)
	}
	// Registry retrain counters and version gauge.
	if v := metricValue(t, text, `echoimage_registry_trains_started_total`); v < 1 {
		t.Errorf("trains started %v, want >= 1", v)
	}
	if v := metricValue(t, text, `echoimage_registry_model_version`); v != 1 {
		t.Errorf("model version gauge %v, want 1", v)
	}
	if v := metricValue(t, text, `echoimage_registry_train_seconds_count`); v < 1 {
		t.Errorf("train duration count %v, want >= 1", v)
	}

	// /varz carries the authenticate trace with its stage spans.
	varzResp, err := http.Get(admin.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	varzRaw, err := io.ReadAll(varzResp.Body)
	varzResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []telemetry.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(varzRaw, &doc); err != nil {
		t.Fatal(err)
	}
	var authTrace *telemetry.TraceRecord
	for i := range doc.Traces {
		if doc.Traces[i].RequestID == "e2e-auth" {
			authTrace = &doc.Traces[i]
		}
	}
	if authTrace == nil {
		t.Fatal("authenticate trace not in /varz")
	}
	// 3 beeps: preprocess+ranging+imaging once, features+classify per image.
	if len(authTrace.Spans) < 5 {
		t.Errorf("authenticate trace has %d spans: %+v", len(authTrace.Spans), authTrace.Spans)
	}
	stages := make(map[string]bool)
	var spanSum int64
	for _, sp := range authTrace.Spans {
		stages[sp.Stage] = true
		spanSum += sp.DurMicros
	}
	for _, want := range []string{core.StagePreprocess, core.StageRanging, core.StageImaging, core.StageFeatures, core.StageClassify} {
		if !stages[want] {
			t.Errorf("trace missing stage %q", want)
		}
	}
	if authTrace.DurMicros < spanSum {
		t.Errorf("trace total %dµs < span sum %dµs", authTrace.DurMicros, spanSum)
	}
}
