package daemon

import (
	"context"
	"net"
	"os"
	"testing"
	"time"

	"echoimage/internal/array"
	"echoimage/internal/body"
	"echoimage/internal/core"
	"echoimage/internal/dataset"
	"echoimage/internal/proto"
	"echoimage/internal/sim"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 24, 24
	cfg.GridSpacingM = 0.08
	sys, err := core.NewSystem(cfg, array.ReSpeaker())
	if err != nil {
		t.Fatal(err)
	}
	return New(sys, core.DefaultAuthConfig(), t.Logf)
}

func wireCapture(t *testing.T, userID, session, beeps int, seed int64) proto.CaptureWire {
	t.Helper()
	spec := dataset.SessionSpec{
		Profile:   body.Roster()[userID-1],
		Env:       sim.EnvLab,
		Noise:     sim.NoiseQuiet,
		DistanceM: 0.7,
		Session:   session,
		Beeps:     beeps,
		Seed:      seed,
	}
	cap, noiseOnly, err := dataset.Collect(spec)
	if err != nil {
		t.Fatal(err)
	}
	return proto.CaptureWire{
		Beeps:      cap.Beeps,
		SampleRate: cap.SampleRate,
		NoiseOnly:  noiseOnly,
		Reference:  cap.Reference,
	}
}

func TestEnrollAuthenticateDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t)

	// Authentication before any training must fail cleanly.
	if _, err := srv.Authenticate(&proto.AuthRequest{Capture: wireCapture(t, 1, 3, 2, 9)}); err == nil {
		t.Error("untrained daemon authenticated")
	}

	for p := 0; p < 3; p++ {
		resp, err := srv.Enroll(&proto.EnrollRequest{
			UserID:  1,
			Capture: wireCapture(t, 1, 1, 5, int64(p)),
			Retrain: p == 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Images != 5 {
			t.Errorf("placement %d produced %d images", p, resp.Images)
		}
		if (p == 2) != resp.Trained {
			t.Errorf("placement %d trained=%v", p, resp.Trained)
		}
	}
	status := srv.Status()
	if !status.Trained || status.TotalImages != 15 || len(status.Users) != 1 {
		t.Errorf("status %+v", status)
	}

	resp, err := srv.Authenticate(&proto.AuthRequest{Capture: wireCapture(t, 1, 3, 4, 42)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legit: accepted=%v id=%d score=%.3f dist=%.2f", resp.Accepted, resp.UserID, resp.GateScore, resp.DistanceM)
	if resp.Accepted && resp.UserID != 1 {
		t.Errorf("accepted as wrong user %d", resp.UserID)
	}
}

func TestEnrollValidation(t *testing.T) {
	srv := testServer(t)
	if _, err := srv.Enroll(&proto.EnrollRequest{UserID: 0}); err == nil {
		t.Error("user 0 accepted")
	}
}

func TestServeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pc := proto.NewConn(conn)

	// Enroll with retrain over the wire.
	if err := pc.Send(proto.TypeEnrollRequest, proto.EnrollRequest{
		UserID:  2,
		Capture: wireCapture(t, 2, 1, 6, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}
	env, err := pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != proto.TypeEnrollResponse {
		t.Fatalf("response type %q", env.Type)
	}

	// Status round trip.
	if err := pc.Send(proto.TypeStatusRequest, nil); err != nil {
		t.Fatal(err)
	}
	env, err = pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	var status proto.StatusResponse
	if err := proto.DecodeBody(env, &status); err != nil {
		t.Fatal(err)
	}
	if !status.Trained {
		t.Error("daemon not trained after retrain request")
	}

	// A malformed request yields a protocol error, not a dropped
	// connection.
	if err := pc.Send(proto.MsgType("bogus"), nil); err != nil {
		t.Fatal(err)
	}
	env, err = pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != proto.TypeError {
		t.Errorf("bogus request answered with %q", env.Type)
	}

	conn.Close()
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not stop after cancellation")
	}
}

// TestModelPersistenceAcrossRestart enrolls and retrains with a model
// path, then boots a fresh server from the written file and authenticates
// without re-enrolling.
func TestModelPersistenceAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	dir := t.TempDir()
	modelPath := dir + "/model.json"

	srv := testServer(t)
	srv.ModelPath = modelPath
	if _, err := srv.Enroll(&proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 8, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatalf("model not persisted: %v", err)
	}
	defer f.Close()
	fresh := testServer(t)
	if err := fresh.LoadModel(f); err != nil {
		t.Fatal(err)
	}
	if !fresh.Status().Trained {
		t.Fatal("restored server not trained")
	}
	resp, err := fresh.Authenticate(&proto.AuthRequest{Capture: wireCapture(t, 1, 3, 4, 9)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restored-model decision: accepted=%v id=%d score=%.3f", resp.Accepted, resp.UserID, resp.GateScore)
	if resp.Accepted && resp.UserID != 1 {
		t.Errorf("restored model misidentified user as %d", resp.UserID)
	}
}
