package daemon

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"echoimage/internal/array"
	"echoimage/internal/body"
	"echoimage/internal/core"
	"echoimage/internal/dataset"
	"echoimage/internal/proto"
	"echoimage/internal/sim"
)

func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 24, 24
	cfg.GridSpacingM = 0.08
	sys, err := core.NewSystem(cfg, array.ReSpeaker())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(sys, core.DefaultAuthConfig(), t.Logf, opts)
	t.Cleanup(srv.Close)
	return srv
}

func wireCapture(t *testing.T, userID, session, beeps int, seed int64) proto.CaptureWire {
	t.Helper()
	spec := dataset.SessionSpec{
		Profile:   body.Roster()[userID-1],
		Env:       sim.EnvLab,
		Noise:     sim.NoiseQuiet,
		DistanceM: 0.7,
		Session:   session,
		Beeps:     beeps,
		Seed:      seed,
	}
	cap, noiseOnly, err := dataset.Collect(spec)
	if err != nil {
		t.Fatal(err)
	}
	return proto.CaptureWire{
		Beeps:      cap.Beeps,
		SampleRate: cap.SampleRate,
		NoiseOnly:  noiseOnly,
		Reference:  cap.Reference,
	}
}

func TestEnrollAuthenticateDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{})
	ctx := context.Background()

	// Authentication before any training must fail cleanly.
	if _, err := srv.Authenticate(ctx, &proto.AuthRequest{Capture: wireCapture(t, 1, 3, 2, 9)}); err == nil {
		t.Error("untrained daemon authenticated")
	}

	for p := 0; p < 3; p++ {
		resp, err := srv.Enroll(ctx, &proto.EnrollRequest{
			UserID:  1,
			Capture: wireCapture(t, 1, 1, 5, int64(p)),
			Retrain: p == 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Images != 5 {
			t.Errorf("placement %d produced %d images", p, resp.Images)
		}
		if (p == 2) != resp.Trained {
			t.Errorf("placement %d trained=%v", p, resp.Trained)
		}
	}
	status := srv.Status()
	if !status.Trained || status.TotalImages != 15 || len(status.Users) != 1 {
		t.Errorf("status %+v", status)
	}
	if status.ModelVersion != 1 {
		t.Errorf("model version %d after first train", status.ModelVersion)
	}

	resp, err := srv.Authenticate(ctx, &proto.AuthRequest{Capture: wireCapture(t, 1, 3, 4, 42)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legit: accepted=%v id=%d score=%.3f dist=%.2f", resp.Accepted, resp.UserID, resp.GateScore, resp.DistanceM)
	if resp.Accepted && resp.UserID != 1 {
		t.Errorf("accepted as wrong user %d", resp.UserID)
	}
	if resp.ModelVersion != 1 {
		t.Errorf("decision from model version %d", resp.ModelVersion)
	}
}

func TestEnrollValidation(t *testing.T) {
	srv := testServer(t, Options{})
	if _, err := srv.Enroll(context.Background(), &proto.EnrollRequest{UserID: 0}); err == nil {
		t.Error("user 0 accepted")
	}
}

// TestServeOverTCP exercises a v1 client — bare envelopes without version
// or request ID — against the v2 daemon: enroll with synchronous retrain,
// status, and an in-band protocol error, unchanged from the old protocol.
func TestServeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pc := proto.NewConn(conn)

	// Enroll with retrain over the wire; v1 semantics are synchronous, so
	// the response must report the model trained, not queued.
	if err := pc.Send(proto.TypeEnrollRequest, proto.EnrollRequest{
		UserID:  2,
		Capture: wireCapture(t, 2, 1, 6, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}
	env, err := pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != proto.TypeEnrollResponse {
		t.Fatalf("response type %q", env.Type)
	}
	if env.Version != 0 || env.RequestID != "" {
		t.Errorf("v1 request answered with v2 envelope fields: %+v", env)
	}
	var enrolled proto.EnrollResponse
	if err := proto.DecodeBody(env, &enrolled); err != nil {
		t.Fatal(err)
	}
	if !enrolled.Trained || enrolled.RetrainQueued {
		t.Errorf("v1 enroll got %+v, want synchronous train", enrolled)
	}

	// Status round trip.
	if err := pc.Send(proto.TypeStatusRequest, nil); err != nil {
		t.Fatal(err)
	}
	env, err = pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	var status proto.StatusResponse
	if err := proto.DecodeBody(env, &status); err != nil {
		t.Fatal(err)
	}
	if !status.Trained {
		t.Error("daemon not trained after retrain request")
	}

	// A malformed request yields a protocol error with a stable code, not
	// a dropped connection.
	if err := pc.Send(proto.MsgType("bogus"), nil); err != nil {
		t.Fatal(err)
	}
	env, err = pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != proto.TypeError {
		t.Errorf("bogus request answered with %q", env.Type)
	}
	var perr proto.ErrorResponse
	if err := proto.DecodeBody(env, &perr); err != nil {
		t.Fatal(err)
	}
	if perr.Code != proto.CodeUnknownType {
		t.Errorf("error code %q, want %q", perr.Code, proto.CodeUnknownType)
	}

	conn.Close()
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not stop after cancellation")
	}
}

// TestModelPersistenceAcrossRestart enrolls and retrains with a model
// path, then boots a fresh server from the written file and authenticates
// without re-enrolling.
func TestModelPersistenceAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	dir := t.TempDir()
	modelPath := dir + "/model.json"
	ctx := context.Background()

	srv := testServer(t, Options{ModelPath: modelPath})
	if _, err := srv.Enroll(ctx, &proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 8, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatalf("model not persisted: %v", err)
	}
	defer f.Close()
	fresh := testServer(t, Options{})
	if err := fresh.LoadModel(f); err != nil {
		t.Fatal(err)
	}
	if !fresh.Status().Trained {
		t.Fatal("restored server not trained")
	}
	if info := fresh.ModelInfo(); !info.Loaded {
		t.Errorf("restored model info %+v, want Loaded", info)
	}
	resp, err := fresh.Authenticate(ctx, &proto.AuthRequest{Capture: wireCapture(t, 1, 3, 4, 9)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("restored-model decision: accepted=%v id=%d score=%.3f", resp.Accepted, resp.UserID, resp.GateScore)
	if resp.Accepted && resp.UserID != 1 {
		t.Errorf("restored model misidentified user as %d", resp.UserID)
	}
}

// v2call sends a v2 envelope and returns the response after verifying the
// request-ID echo.
func v2call(t *testing.T, pc *proto.Conn, msgType proto.MsgType, reqID string, body any) *proto.Envelope {
	t.Helper()
	env, err := proto.NewEnvelope(msgType, reqID, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.SendEnvelope(env); err != nil {
		t.Fatal(err)
	}
	resp, err := pc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != reqID {
		t.Fatalf("response request_id %q, want %q", resp.RequestID, reqID)
	}
	if resp.Version != proto.Version {
		t.Fatalf("response version %d, want %d", resp.Version, proto.Version)
	}
	return resp
}

// TestAuthenticateDuringRetrain is the serving-stack liveness proof: with
// a background retrain deliberately blocked in the trainer, parallel v2
// authenticate requests must all be answered by the previous model
// version. Only after the trainer is released may the version advance.
// Run under -race (make race) this also checks the swap for data races.
func TestAuthenticateDuringRetrain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	release := make(chan struct{})
	var trains atomic.Int32
	train := func(ctx context.Context, cfg core.AuthConfig, enr map[int][]*core.AcousticImage) (*core.Authenticator, error) {
		if trains.Add(1) > 1 {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return core.TrainAuthenticatorContext(ctx, cfg, enr)
	}
	// QueueWait is generous: on a small machine the parallel authenticates
	// below legitimately queue for one processing slot, and this test is
	// about retrain liveness, not load shedding (chaos_test.go covers that).
	srv := testServer(t, Options{Train: train, QueueWait: time.Minute})
	ctx := context.Background()

	// Train model v1 synchronously so authentication has a live model.
	if _, err := srv.Enroll(ctx, &proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 6, 1),
		Retrain: true,
	}); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serveCtx, ln) }()

	// v2 enroll with retrain: the response must come back immediately
	// with the retrain queued, while the trainer blocks on `release`.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := proto.NewConn(conn)
	resp := v2call(t, pc, proto.TypeEnrollRequest, "enroll-1", proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 2, 6, 2),
		Retrain: true,
	})
	if resp.Type != proto.TypeEnrollResponse {
		t.Fatalf("response type %q", resp.Type)
	}
	var enrolled proto.EnrollResponse
	if err := proto.DecodeBody(resp, &enrolled); err != nil {
		t.Fatal(err)
	}
	if !enrolled.RetrainQueued || enrolled.Trained {
		t.Fatalf("v2 enroll got %+v, want queued retrain", enrolled)
	}

	// With the retrain wedged in the trainer, N parallel authenticates
	// must all complete against model v1. Joining them before releasing
	// the trainer proves no authenticate ever waits on training.
	const parallel = 4
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			cpc := proto.NewConn(c)
			env, err := proto.NewEnvelope(proto.TypeAuthRequest, "", proto.AuthRequest{
				Capture: wireCapture(t, 1, 3, 3, int64(100+i)),
			})
			if err != nil {
				errs <- err
				return
			}
			if err := cpc.SendEnvelope(env); err != nil {
				errs <- err
				return
			}
			r, err := cpc.Receive()
			if err != nil {
				errs <- err
				return
			}
			var auth proto.AuthResponse
			if err := proto.DecodeBody(r, &auth); err != nil {
				errs <- err
				return
			}
			if auth.ModelVersion != 1 {
				errs <- fmt.Errorf("authenticate served by model v%d during retrain, want v1", auth.ModelVersion)
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if v := srv.Registry().Snapshot().Info.Version; v != 1 {
		t.Fatalf("model version advanced to %d with the trainer still blocked", v)
	}

	// Release the trainer and wait for the swap to v2.
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if snap := srv.Registry().Snapshot(); snap.Info.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrain never published model v2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	info := v2call(t, pc, proto.TypeModelInfoRequest, "info-1", nil)
	var mi proto.ModelInfoResponse
	if err := proto.DecodeBody(info, &mi); err != nil {
		t.Fatal(err)
	}
	if !mi.Trained || mi.ModelVersion != 2 || mi.Users != 1 || mi.Images != 12 {
		t.Errorf("model info %+v", mi)
	}
}

// TestRetrainMessage drives the v2 retrain/model_info pair end to end.
func TestRetrainMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	srv := testServer(t, Options{})
	ctx := context.Background()
	if _, err := srv.Enroll(ctx, &proto.EnrollRequest{
		UserID:  1,
		Capture: wireCapture(t, 1, 1, 6, 1),
	}); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serveCtx, ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := proto.NewConn(conn)

	resp := v2call(t, pc, proto.TypeRetrainRequest, "rt-1", proto.RetrainRequest{Wait: true})
	if resp.Type != proto.TypeRetrainResponse {
		t.Fatalf("response type %q", resp.Type)
	}
	var rt proto.RetrainResponse
	if err := proto.DecodeBody(resp, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Queued || rt.ModelVersion != 1 {
		t.Errorf("waited retrain got %+v", rt)
	}
}
