package beamform

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"echoimage/internal/array"
	"echoimage/internal/cmat"
)

// synthPlaneWave builds M-channel analytic snapshots of a narrowband plane
// wave from direction d plus white noise.
func synthPlaneWave(arr *array.Array, d array.Direction, freqHz, fs float64, n int, noise float64, rng *rand.Rand) [][]complex128 {
	sv := arr.SteeringVector(d, freqHz)
	out := make([][]complex128, arr.Len())
	for m := range out {
		out[m] = make([]complex128, n)
	}
	for t := 0; t < n; t++ {
		carrier := cmplx.Rect(1, 2*math.Pi*freqHz*float64(t)/fs)
		for m := range out {
			v := carrier * sv[m]
			v += complex(rng.NormFloat64()*noise, rng.NormFloat64()*noise)
			out[m][t] = v
		}
	}
	return out
}

func TestMVDRDistortionless(t *testing.T) {
	arr := array.ReSpeaker()
	cov := cmat.Identity(arr.Len())
	d := array.Direction{Azimuth: math.Pi / 2, Elevation: math.Pi / 3}
	sv := arr.SteeringVector(d, 2500)
	w, err := MVDRWeights(cov, sv)
	if err != nil {
		t.Fatal(err)
	}
	// wᴴ·p_s = 1 (the defining constraint).
	if g := cmat.Dot(w, sv); cmplx.Abs(g-1) > 1e-9 {
		t.Errorf("distortionless response %v, want 1", g)
	}
}

func TestMVDRRecoversLookDirectionSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arr := array.ReSpeaker()
	d := array.Direction{Azimuth: math.Pi / 2, Elevation: math.Pi / 2}
	const freq, fs = 2500.0, 48000.0
	x := synthPlaneWave(arr, d, freq, fs, 512, 0.05, rng)

	bf, err := New(arr, nil, freq)
	if err != nil {
		t.Fatal(err)
	}
	y, err := bf.Steer(x, d)
	if err != nil {
		t.Fatal(err)
	}
	// The beamformed output magnitude should be ≈ the unit carrier.
	var mean float64
	for _, v := range y {
		mean += cmplx.Abs(v)
	}
	mean /= float64(len(y))
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("beamformed magnitude %g, want ≈ 1", mean)
	}
}

func TestMVDRNullsInterferer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	arr := array.ReSpeaker()
	look := array.Direction{Azimuth: math.Pi / 2, Elevation: math.Pi / 2}
	jam := array.Direction{Azimuth: -math.Pi / 3, Elevation: math.Pi / 2}
	const freq, fs = 2500.0, 48000.0

	// Noise covariance from interferer-only snapshots.
	noiseChans := synthPlaneWave(arr, jam, freq, fs, 2048, 0.02, rng)
	cov, err := EstimateCovariance(noiseChans, 0, 2048, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := New(arr, cov, freq)
	if err != nil {
		t.Fatal(err)
	}
	w, err := bf.WeightsFor(look)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bf.Beampattern(w, []array.Direction{look, jam})
	if math.Abs(pattern[0]-1) > 1e-6 {
		t.Errorf("look-direction gain %g, want 1", pattern[0])
	}
	if pattern[1] > 0.3*pattern[0] {
		t.Errorf("interferer gain %g not suppressed vs look %g", pattern[1], pattern[0])
	}
}

func TestEstimateCovarianceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arr := array.ReSpeaker()
	x := synthPlaneWave(arr, array.Direction{Azimuth: 1, Elevation: 1}, 2500, 48000, 256, 0.5, rng)
	cov, err := EstimateCovariance(x, 0, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Hermitian(1e-9) {
		t.Error("covariance not Hermitian")
	}
	// Normalized: trace == M.
	if tr := real(cov.Trace()); math.Abs(tr-float64(arr.Len())) > 1e-9 {
		t.Errorf("trace %g, want %d", tr, arr.Len())
	}
}

func TestEstimateCovarianceDegenerate(t *testing.T) {
	m := 4
	silent := make([][]complex128, m)
	for i := range silent {
		silent[i] = make([]complex128, 64)
	}
	cov, err := EstimateCovariance(silent, 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmat.MaxAbsDiff(cov, cmat.Identity(m)); d > 1e-12 {
		t.Errorf("silent covariance differs from identity by %g", d)
	}
	if _, err := EstimateCovariance(silent, 10, 10, 0); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := EstimateCovariance(nil, 0, 1, 0); err == nil {
		t.Error("no channels accepted")
	}
}

func TestDelayAndSumWeights(t *testing.T) {
	arr := array.ReSpeaker()
	d := array.Direction{Azimuth: 0.5, Elevation: 1.0}
	sv := arr.SteeringVector(d, 2500)
	w := DelayAndSumWeights(sv)
	// Unit gain toward the look direction.
	if g := cmat.Dot(w, sv); cmplx.Abs(g-1) > 1e-12 {
		t.Errorf("DAS look gain %v, want 1", g)
	}
}

func TestApplyValidation(t *testing.T) {
	x := [][]complex128{{1, 2}, {3, 4}}
	if _, err := Apply(x, []complex128{1}); err == nil {
		t.Error("weight/channel mismatch accepted")
	}
	ragged := [][]complex128{{1, 2}, {3}}
	if _, err := Apply(ragged, []complex128{1, 1}); err == nil {
		t.Error("ragged channels accepted")
	}
}

func TestRealPartMagnitude(t *testing.T) {
	x := []complex128{3 + 4i, -1}
	if r := RealPart(x); r[0] != 3 || r[1] != -1 {
		t.Errorf("RealPart = %v", r)
	}
	if m := Magnitude(x); math.Abs(m[0]-5) > 1e-12 || m[1] != 1 {
		t.Errorf("Magnitude = %v", m)
	}
}

func TestNewValidation(t *testing.T) {
	arr := array.ReSpeaker()
	if _, err := New(nil, nil, 2500); err == nil {
		t.Error("nil array accepted")
	}
	if _, err := New(arr, nil, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := New(arr, cmat.Identity(3), 2500); err == nil {
		t.Error("wrong covariance size accepted")
	}
}

func TestSubbandSteerRecoversTone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arr := array.ReSpeaker()
	d := array.Direction{Azimuth: math.Pi / 2, Elevation: math.Pi / 2}
	const fs = 48000.0
	cfg := SubbandConfig{SampleRate: fs, LowHz: 2000, HighHz: 3000}
	sb, err := NewSubband(arr, cfg, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Real in-band plane wave frame.
	frame := make([][]float64, arr.Len())
	sv := arr.SteeringVector(d, 2500)
	for m := range frame {
		frame[m] = make([]float64, sb.FrameSize())
		phase := cmplx.Phase(sv[m])
		for t := 0; t < sb.FrameSize(); t++ {
			frame[m][t] = math.Cos(2*math.Pi*2500*float64(t)/fs+phase) + rng.NormFloat64()*0.01
		}
	}
	y, err := sb.Steer(frame, d)
	if err != nil {
		t.Fatal(err)
	}
	// Output power should approximate the aligned tone's power (~0.5).
	var p float64
	for _, v := range y {
		p += v * v
	}
	p /= float64(len(y))
	if p < 0.3 {
		t.Errorf("subband output power %g, want ≈ 0.5", p)
	}
}

func TestSubbandValidation(t *testing.T) {
	arr := array.ReSpeaker()
	bad := SubbandConfig{SampleRate: 48000, LowHz: 3000, HighHz: 2000}
	if _, err := NewSubband(arr, bad, 512, nil); err == nil {
		t.Error("inverted band accepted")
	}
	good := SubbandConfig{SampleRate: 48000, LowHz: 2000, HighHz: 3000}
	if _, err := NewSubband(nil, good, 512, nil); err == nil {
		t.Error("nil array accepted")
	}
	if _, err := NewSubband(arr, good, 1, nil); err == nil {
		t.Error("tiny frame accepted")
	}
}

func TestSubbandWithNoiseFramesSuppresssInterferer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arr := array.ReSpeaker()
	look := array.Direction{Azimuth: math.Pi / 2, Elevation: math.Pi / 2}
	jam := array.Direction{Azimuth: -math.Pi / 2, Elevation: math.Pi / 2}
	const fs = 48000.0
	frameLen := 1024

	// Noise-only frames: interferer tone at 2.4 kHz from the jam
	// direction.
	mkFrame := func(dir array.Direction, freq, amp float64) [][]float64 {
		sv := arr.SteeringVector(dir, freq)
		frame := make([][]float64, arr.Len())
		for m := range frame {
			frame[m] = make([]float64, frameLen)
			phase := cmplx.Phase(sv[m])
			for ti := 0; ti < frameLen; ti++ {
				frame[m][ti] = amp * math.Cos(2*math.Pi*freq*float64(ti)/fs+phase)
			}
		}
		return frame
	}
	var noiseFrames [][][]float64
	for i := 0; i < 8; i++ {
		f := mkFrame(jam, 2400, 1)
		for m := range f {
			for ti := range f[m] {
				f[m][ti] += rng.NormFloat64() * 0.05
			}
		}
		noiseFrames = append(noiseFrames, f)
	}
	cfg := SubbandConfig{SampleRate: fs, LowHz: 2000, HighHz: 3000, Loading: 1e-2}
	sb, err := NewSubband(arr, cfg, frameLen, noiseFrames)
	if err != nil {
		t.Fatal(err)
	}

	// Live frame: desired tone from the look direction plus the jammer.
	frame := mkFrame(look, 2400, 1)
	jamFrame := mkFrame(jam, 2400, 1)
	for m := range frame {
		for ti := range frame[m] {
			frame[m][ti] += jamFrame[m][ti]
		}
	}
	y, err := sb.Steer(frame, look)
	if err != nil {
		t.Fatal(err)
	}
	// Compare with pure-jammer output: the jammer must be attenuated
	// relative to the look-direction tone.
	yJam, err := sb.Steer(jamFrame, look)
	if err != nil {
		t.Fatal(err)
	}
	var pMix, pJam float64
	for i := range y {
		pMix += y[i] * y[i]
		pJam += yJam[i] * yJam[i]
	}
	if pJam > 0.5*pMix {
		t.Errorf("jammer power %g not suppressed relative to mix %g", pJam, pMix)
	}

	// Channel-count validation.
	if _, err := sb.Steer(frame[:2], look); err == nil {
		t.Error("channel mismatch accepted")
	}
}
