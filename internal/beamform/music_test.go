package beamform

import (
	"math"
	"math/rand"
	"testing"

	"echoimage/internal/array"
)

func TestMUSICFindsSourceAzimuth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arr := array.ReSpeaker()
	const freq, fs = 2500.0, 48000.0
	for _, wantAz := range []float64{0, math.Pi / 3, -2.0} {
		src := array.Direction{Azimuth: wantAz, Elevation: math.Pi / 2}
		x := synthPlaneWave(arr, src, freq, fs, 1024, 0.05, rng)
		res, err := MUSICAzimuth(arr, x, freq, 1, math.Pi/2, math.Pi/360)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(res.PeakAzimuthRad - wantAz)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		if diff > 0.1 {
			t.Errorf("azimuth %.3f estimated as %.3f (err %.3f rad)", wantAz, res.PeakAzimuthRad, diff)
		}
	}
}

func TestMUSICValidation(t *testing.T) {
	arr := array.ReSpeaker()
	x := make([][]complex128, arr.Len())
	for i := range x {
		x[i] = make([]complex128, 64)
		x[i][0] = 1
	}
	if _, err := MUSICAzimuth(arr, x[:2], 2500, 1, math.Pi/2, 0.01); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := MUSICAzimuth(arr, x, 2500, 0, math.Pi/2, 0.01); err == nil {
		t.Error("zero sources accepted")
	}
	if _, err := MUSICAzimuth(arr, x, 2500, arr.Len(), math.Pi/2, 0.01); err == nil {
		t.Error("full-rank source count accepted")
	}
	if _, err := MUSICAzimuth(arr, x, 2500, 1, math.Pi/2, 0); err == nil {
		t.Error("zero resolution accepted")
	}
}
