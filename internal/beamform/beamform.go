// Package beamform implements the spatial filtering EchoImage relies on:
// MVDR (minimum variance distortionless response) and delay-and-sum
// beamformers over narrowband analytic signals, noise covariance estimation
// with diagonal loading, a subband (per-FFT-bin) variant for wideband
// chirps, and beampattern evaluation.
package beamform

import (
	"fmt"
	"math/cmplx"
	"sync"

	"echoimage/internal/array"
	"echoimage/internal/cmat"
	"echoimage/internal/dsp"
)

// AnalyticChannels converts an M-channel real recording into complex
// analytic signals, one Hilbert transform per channel. Narrowband
// phase-shift beamforming requires the analytic representation so that
// steering-vector phase rotations realize time delays.
func AnalyticChannels(chans [][]float64) [][]complex128 {
	out := make([][]complex128, len(chans))
	for m, ch := range chans {
		out[m] = dsp.AnalyticSignal(ch)
	}
	return out
}

// EstimateCovariance computes the sample covariance of the M-channel
// analytic signal over the half-open sample range [start, end):
//
//	ρ = (1/N) Σ_t x(t)·x(t)ᴴ
//
// The matrix is normalized so its trace equals M (the paper's "normalized
// covariance matrix of the background noise"), then diagonally loaded with
// loading·I for numerical robustness. A zero-energy segment degrades to the
// identity matrix.
func EstimateCovariance(x [][]complex128, start, end int, loading float64) (*cmat.Matrix, error) {
	m := len(x)
	if m == 0 {
		return nil, fmt.Errorf("beamform: no channels")
	}
	n := len(x[0])
	for c := 1; c < m; c++ {
		if len(x[c]) != n {
			return nil, fmt.Errorf("beamform: channel %d length %d != %d", c, len(x[c]), n)
		}
	}
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	if start >= end {
		return nil, fmt.Errorf("beamform: empty covariance range [%d, %d)", start, end)
	}
	// Dimensions were validated above, so the outer products accumulate
	// without any per-sample error path. Only the upper triangle is
	// summed; the strict lower triangle is its exact conjugate mirror.
	cov := cmat.New(m, m)
	data := cov.Data
	for t := start; t < end; t++ {
		for i := 0; i < m; i++ {
			xi := x[i][t]
			row := data[i*m : (i+1)*m]
			for j := i; j < m; j++ {
				xj := x[j][t]
				row[j] += xi * complex(real(xj), -imag(xj))
			}
		}
	}
	for i := 1; i < m; i++ {
		for j := 0; j < i; j++ {
			v := data[j*m+i]
			data[i*m+j] = complex(real(v), -imag(v))
		}
	}
	cov.Scale(complex(1/float64(end-start), 0))

	tr := real(cov.Trace())
	if tr <= 1e-30 {
		// Degenerate (silent) segment: fall back to identity noise.
		return cmat.Identity(m), nil
	}
	cov.Scale(complex(float64(m)/tr, 0))
	if loading > 0 {
		cov.AddScaledIdentity(complex(loading, 0))
	}
	return cov, nil
}

// MVDRWeights computes the MVDR weight vector (Eq. 8):
//
//	w = ρ_n⁻¹·p_s / (p_sᴴ·ρ_n⁻¹·p_s)
//
// for the steering vector p_s and normalized noise covariance ρ_n. The
// weights satisfy the distortionless constraint wᴴ·p_s = 1.
func MVDRWeights(noiseCov *cmat.Matrix, steering []complex128) ([]complex128, error) {
	if noiseCov.Rows != len(steering) {
		return nil, fmt.Errorf("beamform: covariance %dx%d vs steering %d", noiseCov.Rows, noiseCov.Cols, len(steering))
	}
	chol, err := cmat.Factor(noiseCov)
	if err != nil {
		return nil, fmt.Errorf("beamform: factor noise covariance: %w", err)
	}
	num, err := chol.SolveVec(steering)
	if err != nil {
		return nil, err
	}
	den := cmat.Dot(steering, num)
	if cmplx.Abs(den) < 1e-30 {
		return nil, fmt.Errorf("beamform: degenerate MVDR denominator %v", den)
	}
	for i, v := range num {
		num[i] = v / den
	}
	return num, nil
}

// DelayAndSumWeights returns the conventional beamformer weights
// w = p_s / M, which phase-align and average the channels.
func DelayAndSumWeights(steering []complex128) []complex128 {
	m := len(steering)
	w := make([]complex128, m)
	for i, v := range steering {
		w[i] = v / complex(float64(m), 0)
	}
	return w
}

// Apply beamforms the M-channel analytic signal with the weight vector:
// y(t) = wᴴ·x(t). All channels must share a length.
func Apply(x [][]complex128, w []complex128) ([]complex128, error) {
	m := len(x)
	if m == 0 || m != len(w) {
		return nil, fmt.Errorf("beamform: %d channels vs %d weights", m, len(w))
	}
	n := len(x[0])
	for c := 1; c < m; c++ {
		if len(x[c]) != n {
			return nil, fmt.Errorf("beamform: ragged channels (%d vs %d)", len(x[c]), n)
		}
	}
	wc := make([]complex128, m)
	for i, v := range w {
		wc[i] = cmplx.Conj(v)
	}
	out := make([]complex128, n)
	for t := 0; t < n; t++ {
		var s complex128
		for c := 0; c < m; c++ {
			s += wc[c] * x[c][t]
		}
		out[t] = s
	}
	return out, nil
}

// RealPart extracts the real component of a complex signal, the
// time-domain beamformer output used for matched filtering.
func RealPart(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)
	}
	return out
}

// Magnitude extracts |x(t)|, the envelope of a beamformed analytic signal.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Beamformer bundles an array geometry with a noise covariance and center
// frequency so callers can steer repeatedly without re-deriving state. The
// covariance is Cholesky-factored once at construction; every steering
// direction then costs two triangular solves (O(M²)) instead of a fresh
// inversion, and the imaging plan issues those solves concurrently against
// the shared immutable factor.
type Beamformer struct {
	arr      *array.Array
	noiseCov *cmat.Matrix
	chol     *cmat.Cholesky
	freqHz   float64
	// steering pools *[]complex128 of length M for WeightsFor scratch.
	steering sync.Pool
}

// New constructs a Beamformer. noiseCov may be nil, in which case spatially
// white noise (identity covariance, MVDR degrades to delay-and-sum) is
// assumed.
func New(arr *array.Array, noiseCov *cmat.Matrix, freqHz float64) (*Beamformer, error) {
	if arr == nil {
		return nil, fmt.Errorf("beamform: nil array")
	}
	if freqHz <= 0 {
		return nil, fmt.Errorf("beamform: center frequency %g <= 0", freqHz)
	}
	if noiseCov == nil {
		noiseCov = cmat.Identity(arr.Len())
	}
	if noiseCov.Rows != arr.Len() || noiseCov.Cols != arr.Len() {
		return nil, fmt.Errorf("beamform: covariance %dx%d for %d mics", noiseCov.Rows, noiseCov.Cols, arr.Len())
	}
	chol, err := cmat.Factor(noiseCov)
	if err != nil {
		return nil, fmt.Errorf("beamform: factor noise covariance: %w", err)
	}
	b := &Beamformer{arr: arr, noiseCov: noiseCov, chol: chol, freqHz: freqHz}
	m := arr.Len()
	b.steering.New = func() any {
		buf := make([]complex128, m)
		return &buf
	}
	return b, nil
}

// Array returns the underlying geometry.
func (b *Beamformer) Array() *array.Array { return b.arr }

// FreqHz returns the narrowband design frequency.
func (b *Beamformer) FreqHz() float64 { return b.freqHz }

// WeightsFor returns the MVDR weights steered at direction d via two
// triangular solves against the cached Cholesky factor. Only the returned
// weight vector is allocated; the steering vector comes from a pool.
func (b *Beamformer) WeightsFor(d array.Direction) ([]complex128, error) {
	psp := b.steering.Get().(*[]complex128)
	ps := *psp
	b.arr.SteeringVectorInto(ps, d, b.freqHz)
	w := make([]complex128, len(ps))
	if err := b.chol.SolveVecTo(w, ps); err != nil {
		b.steering.Put(psp)
		return nil, err
	}
	den := cmat.Dot(ps, w)
	b.steering.Put(psp)
	if cmplx.Abs(den) < 1e-30 {
		return nil, fmt.Errorf("beamform: degenerate MVDR denominator at θ=%.3f φ=%.3f", d.Azimuth, d.Elevation)
	}
	for i, v := range w {
		w[i] = v / den
	}
	return w, nil
}

// Steer beamforms the analytic channels toward direction d with MVDR
// weights.
func (b *Beamformer) Steer(x [][]complex128, d array.Direction) ([]complex128, error) {
	w, err := b.WeightsFor(d)
	if err != nil {
		return nil, err
	}
	return Apply(x, w)
}

// Beampattern evaluates the array response |wᴴ·p_s(d)| of the given weights
// across directions, e.g. to verify the distortionless constraint and
// sidelobe suppression.
func (b *Beamformer) Beampattern(w []complex128, dirs []array.Direction) []float64 {
	out := make([]float64, len(dirs))
	for i, d := range dirs {
		ps := b.arr.SteeringVector(d, b.freqHz)
		out[i] = cmplx.Abs(cmat.Dot(w, ps))
	}
	return out
}
