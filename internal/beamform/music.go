package beamform

import (
	"fmt"
	"math"

	"echoimage/internal/array"
	"echoimage/internal/cmat"
)

// MUSICResult is a direction-of-arrival pseudo-spectrum over candidate
// azimuths, the classic subspace method smart speakers use to localize a
// talker (the 2MA system the paper's related work discusses builds on DoA).
type MUSICResult struct {
	// AzimuthsRad are the scanned candidate azimuths.
	AzimuthsRad []float64
	// Spectrum is the MUSIC pseudo-spectrum, one value per azimuth.
	Spectrum []float64
	// PeakAzimuthRad is the azimuth of the spectrum maximum.
	PeakAzimuthRad float64
}

// MUSICAzimuth estimates source azimuths from M-channel analytic snapshots
// at the given narrowband frequency. numSources is the assumed source
// count (signal-subspace dimension); elevation fixes the scan cone (use
// π/2 for sources in the array plane). resolution is the azimuth step.
func MUSICAzimuth(arr *array.Array, x [][]complex128, freqHz float64, numSources int, elevation, resolution float64) (*MUSICResult, error) {
	m := arr.Len()
	switch {
	case len(x) != m:
		return nil, fmt.Errorf("beamform: %d channels for %d mics", len(x), m)
	case numSources < 1 || numSources >= m:
		return nil, fmt.Errorf("beamform: numSources %d outside [1, %d)", numSources, m-1)
	case resolution <= 0:
		return nil, fmt.Errorf("beamform: resolution %g <= 0", resolution)
	}
	cov, err := EstimateCovariance(x, 0, len(x[0]), 0)
	if err != nil {
		return nil, err
	}
	// Full eigendecomposition; the trailing M−numSources eigenvectors span
	// the noise subspace.
	_, vectors, err := cmat.EigenHermitian(cov, m)
	if err != nil {
		return nil, fmt.Errorf("beamform: eigendecomposition: %w", err)
	}
	noise := vectors[numSources:]

	res := &MUSICResult{}
	best := math.Inf(-1)
	for az := -math.Pi; az < math.Pi; az += resolution {
		d := array.Direction{Azimuth: az, Elevation: elevation}
		ps := arr.SteeringVector(d, freqHz)
		// P(θ) = 1 / Σ_k |e_kᴴ·p_s|².
		var denom float64
		for _, e := range noise {
			pr := cmat.Dot(e, ps)
			denom += real(pr)*real(pr) + imag(pr)*imag(pr)
		}
		if denom < 1e-12 {
			denom = 1e-12
		}
		p := 1 / denom
		res.AzimuthsRad = append(res.AzimuthsRad, az)
		res.Spectrum = append(res.Spectrum, p)
		if p > best {
			best = p
			res.PeakAzimuthRad = az
		}
	}
	return res, nil
}
