package beamform

import (
	"fmt"
	"math/cmplx"

	"echoimage/internal/array"
	"echoimage/internal/cmat"
	"echoimage/internal/dsp"
)

// SubbandConfig parameterizes the wideband (per-FFT-bin) beamformer. The
// paper's chirp spans 2–3 kHz — a 40% fractional bandwidth — which stretches
// the narrowband approximation; the subband processor steers every bin in
// the chirp band at its own frequency instead of using a single center
// frequency.
type SubbandConfig struct {
	SampleRate float64
	// LowHz and HighHz bound the processed band; bins outside pass through
	// zeroed.
	LowHz, HighHz float64
	// Loading is the diagonal loading added to per-bin noise covariance
	// estimates.
	Loading float64
}

// Validate checks the configuration.
func (c SubbandConfig) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return fmt.Errorf("beamform: subband sample rate %g <= 0", c.SampleRate)
	case !(0 < c.LowHz && c.LowHz < c.HighHz):
		return fmt.Errorf("beamform: subband edges (%g, %g) invalid", c.LowHz, c.HighHz)
	case c.HighHz >= c.SampleRate/2:
		return fmt.Errorf("beamform: subband upper edge %g >= Nyquist", c.HighHz)
	}
	return nil
}

// Subband is a wideband frequency-domain beamformer with per-bin MVDR
// weights derived from noise-only frames.
type Subband struct {
	cfg SubbandConfig
	arr *array.Array
	// invCov[k] is the inverse noise covariance for processed bin k
	// (offset by binLo); nil entries mean identity.
	invCov []*cmat.Matrix
	size   int
	binLo  int
	binHi  int
}

// NewSubband builds a subband beamformer for FFT frames of length size
// (rounded up to a power of two). noiseFrames, when non-empty, provides
// M-channel noise-only real frames used to estimate per-bin noise
// covariance (averaged across frames, Bartlett style); otherwise spatially
// white noise is assumed.
func NewSubband(arr *array.Array, cfg SubbandConfig, size int, noiseFrames [][][]float64) (*Subband, error) {
	if arr == nil {
		return nil, fmt.Errorf("beamform: nil array")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("beamform: subband frame size %d < 2", size)
	}
	size = dsp.NextPow2(size)
	binHz := cfg.SampleRate / float64(size)
	binLo := int(cfg.LowHz / binHz)
	binHi := int(cfg.HighHz/binHz) + 1
	if binHi > size/2 {
		binHi = size / 2
	}
	if binLo >= binHi {
		return nil, fmt.Errorf("beamform: empty subband bin range [%d, %d)", binLo, binHi)
	}
	sb := &Subband{cfg: cfg, arr: arr, size: size, binLo: binLo, binHi: binHi}

	if len(noiseFrames) > 0 {
		m := arr.Len()
		cov := make([]*cmat.Matrix, binHi-binLo)
		for k := range cov {
			cov[k] = cmat.New(m, m)
		}
		frames := 0
		for _, frame := range noiseFrames {
			if len(frame) != m {
				return nil, fmt.Errorf("beamform: noise frame has %d channels, want %d", len(frame), m)
			}
			specs := make([][]complex128, m)
			for c := 0; c < m; c++ {
				padded := make([]complex128, size)
				for i, v := range frame[c] {
					if i >= size {
						break
					}
					padded[i] = complex(v, 0)
				}
				specs[c] = dsp.FFT(padded)
			}
			snap := make([]complex128, m)
			for k := binLo; k < binHi; k++ {
				for c := 0; c < m; c++ {
					snap[c] = specs[c][k]
				}
				if err := cmat.OuterAccumulate(cov[k-binLo], snap); err != nil {
					return nil, err
				}
			}
			frames++
		}
		sb.invCov = make([]*cmat.Matrix, binHi-binLo)
		for k := range cov {
			cov[k].Scale(complex(1/float64(frames), 0))
			tr := real(cov[k].Trace())
			if tr <= 1e-30 {
				continue // leave nil → identity
			}
			cov[k].Scale(complex(float64(m)/tr, 0))
			loading := cfg.Loading
			if loading <= 0 {
				loading = 1e-3
			}
			cov[k].AddScaledIdentity(complex(loading, 0))
			inv, err := cov[k].Inverse()
			if err != nil {
				return nil, fmt.Errorf("beamform: invert bin %d covariance: %w", k+binLo, err)
			}
			sb.invCov[k] = inv
		}
	}
	return sb, nil
}

// FrameSize returns the FFT frame length in samples.
func (s *Subband) FrameSize() int { return s.size }

// Steer beamforms one M-channel real frame toward direction d and returns
// the real time-domain output of length FrameSize. Input frames shorter
// than FrameSize are zero-padded; longer frames are truncated.
func (s *Subband) Steer(frame [][]float64, d array.Direction) ([]float64, error) {
	m := s.arr.Len()
	if len(frame) != m {
		return nil, fmt.Errorf("beamform: frame has %d channels, want %d", len(frame), m)
	}
	specs := make([][]complex128, m)
	for c := 0; c < m; c++ {
		padded := make([]complex128, s.size)
		for i, v := range frame[c] {
			if i >= s.size {
				break
			}
			padded[i] = complex(v, 0)
		}
		specs[c] = dsp.FFT(padded)
	}
	out := make([]complex128, s.size)
	binHz := s.cfg.SampleRate / float64(s.size)
	snap := make([]complex128, m)
	for k := s.binLo; k < s.binHi; k++ {
		freq := float64(k) * binHz
		ps := s.arr.SteeringVector(d, freq)
		var w []complex128
		if s.invCov != nil && s.invCov[k-s.binLo] != nil {
			num, err := s.invCov[k-s.binLo].MulVec(ps)
			if err != nil {
				return nil, err
			}
			den := cmat.Dot(ps, num)
			if cmplx.Abs(den) < 1e-30 {
				w = DelayAndSumWeights(ps)
			} else {
				w = make([]complex128, m)
				for i, v := range num {
					w[i] = v / den
				}
			}
		} else {
			w = DelayAndSumWeights(ps)
		}
		for c := 0; c < m; c++ {
			snap[c] = specs[c][k]
		}
		y := cmat.Dot(w, snap)
		out[k] = y
		// Maintain Hermitian symmetry so the inverse transform is real.
		out[s.size-k] = cmplx.Conj(y)
	}
	td := dsp.IFFT(out)
	res := make([]float64, s.size)
	for i, v := range td {
		res[i] = real(v)
	}
	return res, nil
}
