package beamform

import (
	"fmt"
	"math/cmplx"
	"sync"

	"echoimage/internal/array"
	"echoimage/internal/cmat"
	"echoimage/internal/dsp"
)

// SubbandConfig parameterizes the wideband (per-FFT-bin) beamformer. The
// paper's chirp spans 2–3 kHz — a 40% fractional bandwidth — which stretches
// the narrowband approximation; the subband processor steers every bin in
// the chirp band at its own frequency instead of using a single center
// frequency.
type SubbandConfig struct {
	SampleRate float64
	// LowHz and HighHz bound the processed band; bins outside pass through
	// zeroed.
	LowHz, HighHz float64
	// Loading is the diagonal loading added to per-bin noise covariance
	// estimates.
	Loading float64
}

// Validate checks the configuration.
func (c SubbandConfig) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return fmt.Errorf("beamform: subband sample rate %g <= 0", c.SampleRate)
	case !(0 < c.LowHz && c.LowHz < c.HighHz):
		return fmt.Errorf("beamform: subband edges (%g, %g) invalid", c.LowHz, c.HighHz)
	case c.HighHz >= c.SampleRate/2:
		return fmt.Errorf("beamform: subband upper edge %g >= Nyquist", c.HighHz)
	}
	return nil
}

// Subband is a wideband frequency-domain beamformer with per-bin MVDR
// weights derived from noise-only frames.
type Subband struct {
	cfg SubbandConfig
	arr *array.Array
	// chol[k] is the Cholesky factor of the noise covariance for processed
	// bin k (offset by binLo); nil entries mean identity (delay-and-sum).
	// Each factor is computed once in NewSubband; Steer performs two
	// triangular solves per bin against the immutable factor.
	chol  []*cmat.Cholesky
	size  int
	binLo int
	binHi int
	// scratch pools *subbandScratch so concurrent Steer calls do not
	// contend on shared buffers.
	scratch sync.Pool
}

// subbandScratch holds the per-call working set of Steer: one packed
// half-spectrum per channel, the padded real frame, the packed output
// spectrum, and the per-bin steering/weight/snapshot vectors.
type subbandScratch struct {
	specs [][]complex128
	pad   []float64
	out   []complex128
	ps    []complex128
	w     []complex128
	snap  []complex128
}

// NewSubband builds a subband beamformer for FFT frames of length size
// (rounded up to a power of two). noiseFrames, when non-empty, provides
// M-channel noise-only real frames used to estimate per-bin noise
// covariance (averaged across frames, Bartlett style); otherwise spatially
// white noise is assumed.
func NewSubband(arr *array.Array, cfg SubbandConfig, size int, noiseFrames [][][]float64) (*Subband, error) {
	if arr == nil {
		return nil, fmt.Errorf("beamform: nil array")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("beamform: subband frame size %d < 2", size)
	}
	size = dsp.NextPow2(size)
	binHz := cfg.SampleRate / float64(size)
	binLo := int(cfg.LowHz / binHz)
	binHi := int(cfg.HighHz/binHz) + 1
	if binHi > size/2 {
		binHi = size / 2
	}
	if binLo >= binHi {
		return nil, fmt.Errorf("beamform: empty subband bin range [%d, %d)", binLo, binHi)
	}
	sb := &Subband{cfg: cfg, arr: arr, size: size, binLo: binLo, binHi: binHi}
	m := arr.Len()
	sb.scratch.New = func() any {
		s := &subbandScratch{
			specs: make([][]complex128, m),
			pad:   make([]float64, size),
			out:   make([]complex128, size/2+1),
			ps:    make([]complex128, m),
			w:     make([]complex128, m),
			snap:  make([]complex128, m),
		}
		for c := range s.specs {
			s.specs[c] = make([]complex128, size/2+1)
		}
		return s
	}

	if len(noiseFrames) > 0 {
		cov := make([]*cmat.Matrix, binHi-binLo)
		for k := range cov {
			cov[k] = cmat.New(m, m)
		}
		frames := 0
		pad := make([]float64, size)
		for _, frame := range noiseFrames {
			if len(frame) != m {
				return nil, fmt.Errorf("beamform: noise frame has %d channels, want %d", len(frame), m)
			}
			// binHi ≤ size/2, so the packed one-sided spectrum covers every
			// processed bin.
			specs := make([][]complex128, m)
			for c := 0; c < m; c++ {
				for i := range pad {
					pad[i] = 0
				}
				copy(pad, frame[c])
				specs[c] = dsp.FFTReal(pad)
			}
			snap := make([]complex128, m)
			for k := binLo; k < binHi; k++ {
				for c := 0; c < m; c++ {
					snap[c] = specs[c][k]
				}
				if err := cmat.OuterAccumulate(cov[k-binLo], snap); err != nil {
					return nil, err
				}
			}
			frames++
		}
		sb.chol = make([]*cmat.Cholesky, binHi-binLo)
		for k := range cov {
			cov[k].Scale(complex(1/float64(frames), 0))
			tr := real(cov[k].Trace())
			if tr <= 1e-30 {
				continue // leave nil → identity
			}
			cov[k].Scale(complex(float64(m)/tr, 0))
			loading := cfg.Loading
			if loading <= 0 {
				loading = 1e-3
			}
			cov[k].AddScaledIdentity(complex(loading, 0))
			chol, err := cmat.Factor(cov[k])
			if err != nil {
				return nil, fmt.Errorf("beamform: factor bin %d covariance: %w", k+binLo, err)
			}
			sb.chol[k] = chol
		}
	}
	return sb, nil
}

// FrameSize returns the FFT frame length in samples.
func (s *Subband) FrameSize() int { return s.size }

// Steer beamforms one M-channel real frame toward direction d and returns
// the real time-domain output of length FrameSize. Input frames shorter
// than FrameSize are zero-padded; longer frames are truncated.
func (s *Subband) Steer(frame [][]float64, d array.Direction) ([]float64, error) {
	m := s.arr.Len()
	if len(frame) != m {
		return nil, fmt.Errorf("beamform: frame has %d channels, want %d", len(frame), m)
	}
	sc := s.scratch.Get().(*subbandScratch)
	defer s.scratch.Put(sc)
	for c := 0; c < m; c++ {
		for i := range sc.pad {
			sc.pad[i] = 0
		}
		copy(sc.pad, frame[c])
		dsp.RealFFTInto(sc.specs[c], sc.pad)
	}
	out := sc.out
	for i := range out {
		out[i] = 0
	}
	binHz := s.cfg.SampleRate / float64(s.size)
	for k := s.binLo; k < s.binHi; k++ {
		freq := float64(k) * binHz
		s.arr.SteeringVectorInto(sc.ps, d, freq)
		w := sc.w
		if s.chol != nil && s.chol[k-s.binLo] != nil {
			if err := s.chol[k-s.binLo].SolveVecTo(w, sc.ps); err != nil {
				return nil, err
			}
			den := cmat.Dot(sc.ps, w)
			if cmplx.Abs(den) < 1e-30 {
				delayAndSumInto(w, sc.ps)
			} else {
				for i, v := range w {
					w[i] = v / den
				}
			}
		} else {
			delayAndSumInto(w, sc.ps)
		}
		for c := 0; c < m; c++ {
			sc.snap[c] = sc.specs[c][k]
		}
		// The packed spectrum's implied mirror bins keep the inverse real.
		out[k] = cmat.Dot(w, sc.snap)
	}
	return dsp.IRFFT(out, s.size), nil
}

// delayAndSumInto writes conventional beamformer weights ps/M into dst.
func delayAndSumInto(dst, ps []complex128) {
	m := complex(float64(len(ps)), 0)
	for i, v := range ps {
		dst[i] = v / m
	}
}
