package beamform

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"echoimage/internal/cmat"
)

// estimateCovarianceNaive re-derives the estimate with the straightforward
// per-snapshot outer-product accumulation the optimized loop replaced.
func estimateCovarianceNaive(x [][]complex128, start, end int, loading float64) *cmat.Matrix {
	m := len(x)
	if start < 0 {
		start = 0
	}
	if end > len(x[0]) {
		end = len(x[0])
	}
	cov := cmat.New(m, m)
	snap := make([]complex128, m)
	for t := start; t < end; t++ {
		for c := 0; c < m; c++ {
			snap[c] = x[c][t]
		}
		if err := cmat.OuterAccumulate(cov, snap); err != nil {
			panic(err)
		}
	}
	cov.Scale(complex(1/float64(end-start), 0))
	tr := real(cov.Trace())
	if tr <= 1e-30 {
		return cmat.Identity(m)
	}
	cov.Scale(complex(float64(m)/tr, 0))
	if loading > 0 {
		cov.AddScaledIdentity(complex(loading, 0))
	}
	return cov
}

// TestEstimateCovarianceMatchesNaive asserts the hoisted, triangle-mirrored
// accumulation is exactly equivalent to the per-snapshot reference.
func TestEstimateCovarianceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{1, 2, 6} {
		x := make([][]complex128, m)
		for c := range x {
			x[c] = make([]complex128, 300)
			for i := range x[c] {
				x[c][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		for _, loading := range []float64{0, 0.01} {
			got, err := EstimateCovariance(x, 10, 290, loading)
			if err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
			want := estimateCovarianceNaive(x, 10, 290, loading)
			if d := cmat.MaxAbsDiff(got, want); d > 1e-14 {
				t.Errorf("m=%d loading=%g: max |Δ| = %g", m, loading, d)
			}
			if !got.Hermitian(1e-12) {
				t.Errorf("m=%d: estimate not Hermitian", m)
			}
		}
	}
}

// TestEstimateCovarianceMirrorExact checks the strict lower triangle is the
// exact conjugate of the upper one (the mirror step is a copy, not a
// recomputation).
func TestEstimateCovarianceMirrorExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := make([][]complex128, 4)
	for c := range x {
		x[c] = make([]complex128, 128)
		for i := range x[c] {
			x[c][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	cov, err := EstimateCovariance(x, 0, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cov.Rows; i++ {
		for j := 0; j < i; j++ {
			if cov.At(i, j) != cmplx.Conj(cov.At(j, i)) {
				t.Fatalf("(%d,%d) is not the exact conjugate of (%d,%d)", i, j, j, i)
			}
		}
	}
}

// TestEstimateCovarianceValidation covers the hoisted error paths.
func TestEstimateCovarianceValidation(t *testing.T) {
	if _, err := EstimateCovariance(nil, 0, 1, 0); err == nil {
		t.Error("no channels accepted")
	}
	ragged := [][]complex128{make([]complex128, 10), make([]complex128, 5)}
	if _, err := EstimateCovariance(ragged, 0, 10, 0); err == nil {
		t.Error("ragged channels accepted")
	}
	x := [][]complex128{make([]complex128, 10), make([]complex128, 10)}
	if _, err := EstimateCovariance(x, 5, 5, 0); err == nil {
		t.Error("empty range accepted")
	}
	// Silent segment degrades to identity.
	cov, err := EstimateCovariance(x, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmat.MaxAbsDiff(cov, cmat.Identity(2)); d > 0 {
		t.Errorf("silent segment: max |Δ| from identity = %g", d)
	}
}
