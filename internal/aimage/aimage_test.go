package aimage

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAtSetClone(t *testing.T) {
	im := New(3, 4)
	im.Set(1, 2, 7)
	if im.At(1, 2) != 7 {
		t.Error("At/Set broken")
	}
	c := im.Clone()
	c.Set(1, 2, 9)
	if im.At(1, 2) != 7 {
		t.Error("Clone shares storage")
	}
}

func TestNormalize(t *testing.T) {
	im := New(2, 2)
	copy(im.Pix, []float64{1, 3, 2, 5})
	im.Normalize()
	min, max := im.MinMax()
	if min != 0 || max != 1 {
		t.Errorf("normalized range [%g, %g]", min, max)
	}
	flat := New(2, 2)
	copy(flat.Pix, []float64{4, 4, 4, 4})
	flat.Normalize()
	for _, v := range flat.Pix {
		if v != 0 {
			t.Error("constant image should normalize to zeros")
		}
	}
}

func TestResizeIdentityAndInterp(t *testing.T) {
	im := New(2, 2)
	copy(im.Pix, []float64{0, 1, 2, 3})
	same := im.Resize(2, 2)
	for i := range im.Pix {
		if same.Pix[i] != im.Pix[i] {
			t.Error("identity resize changed pixels")
		}
	}
	up := im.Resize(3, 3)
	// The center of the upsampled image is the bilinear average.
	if got := up.At(1, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("center %g, want 1.5", got)
	}
	// Corners are preserved.
	if up.At(0, 0) != 0 || up.At(2, 2) != 3 {
		t.Error("corners not preserved")
	}
}

// TestResizeRangeProperty: bilinear output stays within input bounds.
func TestResizeRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := New(2+rng.Intn(6), 2+rng.Intn(6))
		for i := range im.Pix {
			im.Pix[i] = rng.NormFloat64() * 5
		}
		min, max := im.MinMax()
		out := im.Resize(2+rng.Intn(9), 2+rng.Intn(9))
		oMin, oMax := out.MinMax()
		return oMin >= min-1e-9 && oMax <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	a := New(2, 2)
	copy(a.Pix, []float64{1, 2, 3, 4})
	// Perfect correlation with itself.
	if c, err := Correlation(a, a); err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("self correlation %g (%v)", c, err)
	}
	// Perfect anti-correlation with the negated image.
	b := a.Clone()
	for i := range b.Pix {
		b.Pix[i] = -b.Pix[i]
	}
	if c, _ := Correlation(a, b); math.Abs(c+1) > 1e-12 {
		t.Errorf("anti correlation %g, want -1", c)
	}
	// Constant image correlates as zero.
	flat := New(2, 2)
	if c, _ := Correlation(a, flat); c != 0 {
		t.Errorf("flat correlation %g", c)
	}
	// Shape mismatch is an error.
	if _, err := Correlation(a, New(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestL2Distance(t *testing.T) {
	a := New(1, 2)
	copy(a.Pix, []float64{0, 3})
	b := New(1, 2)
	copy(b.Pix, []float64{4, 3})
	if d, err := L2Distance(a, b); err != nil || d != 4 {
		t.Errorf("L2 = %g (%v)", d, err)
	}
	if _, err := L2Distance(a, New(2, 2)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestWritePGM(t *testing.T) {
	im := New(2, 3)
	copy(im.Pix, []float64{0, 1, 2, 3, 4, 5})
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pix := out[len("P5\n3 2\n255\n"):]
	if len(pix) != 6 {
		t.Fatalf("%d pixel bytes, want 6", len(pix))
	}
	if pix[0] != 0 || pix[5] != 255 {
		t.Errorf("normalization wrong: first %d last %d", pix[0], pix[5])
	}
}

func TestASCIIArt(t *testing.T) {
	im := New(8, 8)
	im.Set(4, 4, 1)
	art := im.ASCIIArt(16)
	if art == "" || !strings.Contains(art, "@") {
		t.Errorf("ASCII art missing peak marker:\n%s", art)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) > 16 {
		t.Errorf("ASCII art too wide: %d", len(lines[0]))
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}
