package aimage

import (
	"fmt"
	"io"
	"strings"
)

// WritePGM serializes the image as a binary 8-bit PGM (portable graymap),
// normalizing pixel values to the 0–255 range. PGM keeps the module free of
// image-codec dependencies while remaining viewable everywhere.
func (im *Image) WritePGM(w io.Writer) error {
	min, max := im.MinMax()
	span := max - min
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.Cols, im.Rows); err != nil {
		return fmt.Errorf("aimage: write PGM header: %w", err)
	}
	buf := make([]byte, len(im.Pix))
	for i, v := range im.Pix {
		if span > 0 {
			buf[i] = byte((v - min) / span * 255)
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("aimage: write PGM pixels: %w", err)
	}
	return nil
}

// ASCIIArt renders the image as text using a density ramp, downsampling to
// at most maxCols columns. Useful for terminal inspection of acoustic
// images (Figure 8 style).
func (im *Image) ASCIIArt(maxCols int) string {
	if maxCols < 4 {
		maxCols = 4
	}
	src := im
	if im.Cols > maxCols {
		rows := im.Rows * maxCols / im.Cols
		if rows < 2 {
			rows = 2
		}
		// Terminal cells are ~2x taller than wide; halve the rows.
		src = im.Resize(rows/2+1, maxCols)
	}
	ramp := []byte(" .:-=+*#%@")
	min, max := src.MinMax()
	span := max - min
	var sb strings.Builder
	sb.Grow((src.Cols + 1) * src.Rows)
	for r := 0; r < src.Rows; r++ {
		for c := 0; c < src.Cols; c++ {
			idx := 0
			if span > 0 {
				idx = int((src.At(r, c) - min) / span * float64(len(ramp)-1))
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
