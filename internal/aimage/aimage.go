// Package aimage defines the acoustic image type EchoImage constructs — a
// 2-D grid of echo-energy pixels over the virtual imaging plane — together
// with the resizing, normalization, comparison and rendering utilities the
// rest of the system needs.
package aimage

import (
	"fmt"
	"math"
)

// Image is a dense row-major acoustic image: Pix[r*Cols+c] is the pixel at
// row r (z axis, top row = highest z) and column c (x axis).
type Image struct {
	Rows, Cols int
	Pix        []float64
}

// New returns a zeroed rows×cols image.
func New(rows, cols int) *Image {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("aimage: invalid size %dx%d", rows, cols))
	}
	return &Image{Rows: rows, Cols: cols, Pix: make([]float64, rows*cols)}
}

// At returns the pixel at (r, c).
func (im *Image) At(r, c int) float64 { return im.Pix[r*im.Cols+c] }

// Set assigns the pixel at (r, c).
func (im *Image) Set(r, c int, v float64) { im.Pix[r*im.Cols+c] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := New(im.Rows, im.Cols)
	copy(out.Pix, im.Pix)
	return out
}

// MinMax returns the smallest and largest pixel values.
func (im *Image) MinMax() (min, max float64) {
	if len(im.Pix) == 0 {
		return 0, 0
	}
	min, max = im.Pix[0], im.Pix[0]
	for _, v := range im.Pix[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Normalize rescales the image in place to [0, 1]. A constant image maps to
// all zeros. It returns the receiver.
func (im *Image) Normalize() *Image {
	min, max := im.MinMax()
	span := max - min
	if span <= 0 {
		for i := range im.Pix {
			im.Pix[i] = 0
		}
		return im
	}
	inv := 1 / span
	for i, v := range im.Pix {
		im.Pix[i] = (v - min) * inv
	}
	return im
}

// Mean returns the average pixel value.
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Resize bilinearly resamples the image to rows×cols. It is used to match
// the feature extractor's fixed input size, like the paper's "resize the
// image to match the input of VGGish model".
func (im *Image) Resize(rows, cols int) *Image {
	out := New(rows, cols)
	if im.Rows == rows && im.Cols == cols {
		copy(out.Pix, im.Pix)
		return out
	}
	for r := 0; r < rows; r++ {
		// Map output pixel centers onto input coordinates.
		var srcR float64
		if rows > 1 {
			srcR = float64(r) * float64(im.Rows-1) / float64(rows-1)
		}
		r0 := int(srcR)
		r1 := r0 + 1
		if r1 > im.Rows-1 {
			r1 = im.Rows - 1
		}
		fr := srcR - float64(r0)
		for c := 0; c < cols; c++ {
			var srcC float64
			if cols > 1 {
				srcC = float64(c) * float64(im.Cols-1) / float64(cols-1)
			}
			c0 := int(srcC)
			c1 := c0 + 1
			if c1 > im.Cols-1 {
				c1 = im.Cols - 1
			}
			fc := srcC - float64(c0)
			v := im.At(r0, c0)*(1-fr)*(1-fc) +
				im.At(r0, c1)*(1-fr)*fc +
				im.At(r1, c0)*fr*(1-fc) +
				im.At(r1, c1)*fr*fc
			out.Set(r, c, v)
		}
	}
	return out
}

// Correlation returns the Pearson correlation between two images of equal
// shape, the similarity measure used in the Figure 8 feasibility study.
// Constant images correlate as zero.
func Correlation(a, b *Image) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("aimage: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if len(a.Pix) == 0 {
		return 0, fmt.Errorf("aimage: empty images")
	}
	ma, mb := a.Mean(), b.Mean()
	var cov, va, vb float64
	for i := range a.Pix {
		da := a.Pix[i] - ma
		db := b.Pix[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// L2Distance returns the Euclidean distance between two images of equal
// shape.
func L2Distance(a, b *Image) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("aimage: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var s float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}
